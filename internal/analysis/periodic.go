package analysis

import (
	"math"
	"math/cmplx"
	"net/netip"
	"sort"
	"time"

	"iotlan/internal/classify"
	"iotlan/internal/pcap"
)

// PeriodicGroup is one (destination, protocol) traffic group tested for
// periodicity per Appendix D.1 (ports are ignored because devices randomise
// them).
type PeriodicGroup struct {
	SrcMAC   [6]byte
	Dst      netip.Addr
	Protocol string
	Times    []time.Time
	// Periodic is the DFT+autocorrelation verdict.
	Periodic bool
	// Period is the dominant interval when periodic.
	Period time.Duration
}

// GroupDiscoveryTraffic buckets capture records into (src, dst, protocol)
// groups for the periodicity analysis.
func GroupDiscoveryTraffic(records []pcap.Record) []*PeriodicGroup {
	final := classify.Final{}
	type key struct {
		src   [6]byte
		dst   netip.Addr
		proto string
	}
	index := map[key]*PeriodicGroup{}
	var order []*PeriodicGroup
	flows, _ := classify.Assemble(pcap.FilterLocal(records))
	// Re-walk raw records for timestamps per group (flows lose them).
	labels := map[classify.FlowKey]string{}
	for _, f := range flows {
		labels[f.Key] = final.Classify(f)
	}
	// Only multicast/broadcast discovery traffic enters the analysis —
	// Appendix D.1 is about discovery protocol flows, and unicast responses
	// ride on other devices' schedules.
	discoveryLabels := map[string]bool{
		"MDNS": true, "SSDP": true, "TPLINK-SMARTHOME": true,
		"TUYALP": true, "COAP": true, "LIFX": true,
	}
	for _, r := range records {
		p := r.Decode()
		proto, sp, dp := p.Transport()
		if proto == "" || !p.Eth.Dst.IsMulticast() {
			continue
		}
		label := labels[classify.FlowKey{Src: p.SrcIP(), SrcPort: sp, Dst: p.DstIP(), DstPort: dp, Proto: proto}]
		if !discoveryLabels[label] {
			continue
		}
		k := key{src: p.Eth.Src, dst: p.DstIP(), proto: label}
		g, ok := index[k]
		if !ok {
			g = &PeriodicGroup{SrcMAC: k.src, Dst: k.dst, Protocol: label}
			index[k] = g
			order = append(order, g)
		}
		g.Times = append(g.Times, r.Time)
	}
	return order
}

// DetectPeriodicity runs the Appendix D.1 test on every group: bin the
// event train, take the DFT, confirm the dominant frequency with the
// autocorrelation at the implied lag.
func DetectPeriodicity(groups []*PeriodicGroup) (periodic int) {
	for _, g := range groups {
		g.Periodic, g.Period = isPeriodic(g.Times)
		if g.Periodic {
			periodic++
		}
	}
	return periodic
}

// binWidth is the event-train resolution.
const binWidth = 5 * time.Second

// isPeriodic decides whether a timestamp train is periodic.
func isPeriodic(times []time.Time) (bool, time.Duration) {
	if len(times) < 4 {
		return false, 0
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	span := times[len(times)-1].Sub(times[0])
	if span <= 0 {
		return false, 0
	}
	nBins := int(span/binWidth) + 1
	if nBins < 8 {
		// Short trains: fall back to interval-variance test.
		return intervalTest(times)
	}
	if nBins > 1<<14 {
		nBins = 1 << 14
	}
	bins := make([]float64, nBins)
	for _, t := range times {
		idx := int(t.Sub(times[0]) / binWidth)
		if idx >= nBins {
			idx = nBins - 1
		}
		bins[idx]++
	}
	// Remove the DC component.
	mean := 0.0
	for _, b := range bins {
		mean += b
	}
	mean /= float64(nBins)
	for i := range bins {
		bins[i] -= mean
	}
	spec := dft(bins)
	// Find the dominant non-DC frequency.
	bestK, bestP := 0, 0.0
	totalP := 0.0
	for k := 1; k < len(spec)/2; k++ {
		p := cmplx.Abs(spec[k])
		totalP += p
		if p > bestP {
			bestP, bestK = p, k
		}
	}
	if bestK == 0 || totalP == 0 {
		return intervalTest(times)
	}
	// Spectral concentration: the peak must stand out.
	if bestP >= 2.5*totalP/float64(len(spec)/2) {
		period := time.Duration(float64(nBins) / float64(bestK) * float64(binWidth))
		// Confirm with the autocorrelation at the implied lag (±1 bin to
		// absorb jitter-induced smearing).
		lag := int(period / binWidth)
		for _, l := range []int{lag, lag - 1, lag + 1} {
			if l >= 1 && l < nBins/2 && autocorr(bins, l) > 0.25 {
				return true, period
			}
		}
	}
	// Autocorrelation scan: jittered timers smear the spectrum but keep a
	// clear self-similarity peak.
	if lag, r := bestAutocorr(bins); r > 0.35 && lag >= 2 {
		return true, time.Duration(lag) * binWidth
	}
	return intervalTest(times)
}

// bestAutocorr scans lags for the strongest self-similarity.
func bestAutocorr(bins []float64) (int, float64) {
	bestLag, best := 0, 0.0
	max := len(bins) / 3
	if max > 720 { // cap the scan at one-hour lags
		max = 720
	}
	for lag := 2; lag < max; lag++ {
		if r := autocorr(bins, lag); r > best {
			best, bestLag = r, lag
		}
	}
	return bestLag, best
}

// intervalTest is the fallback: low coefficient-of-variation inter-arrival
// times are periodic. The tails are trimmed so a single boot-time gap does
// not mask an otherwise clean timer.
func intervalTest(times []time.Time) (bool, time.Duration) {
	if len(times) < 3 {
		return false, 0
	}
	var intervals []float64
	for i := 1; i < len(times); i++ {
		intervals = append(intervals, times[i].Sub(times[i-1]).Seconds())
	}
	sort.Float64s(intervals)
	if len(intervals) >= 10 {
		cut := len(intervals) / 10
		intervals = intervals[cut : len(intervals)-cut]
	}
	mean, varsum := 0.0, 0.0
	for _, iv := range intervals {
		mean += iv
	}
	mean /= float64(len(intervals))
	if mean == 0 {
		return false, 0
	}
	for _, iv := range intervals {
		varsum += (iv - mean) * (iv - mean)
	}
	cv := math.Sqrt(varsum/float64(len(intervals))) / mean
	if cv < 0.35 {
		return true, time.Duration(mean * float64(time.Second))
	}
	return false, 0
}

// dft is a direct discrete Fourier transform; n is at most 2^14 so O(n²) on
// the reduced bins is acceptable for the analysis sizes here. For large n
// it decimates first.
func dft(x []float64) []complex128 {
	n := len(x)
	if n > 2048 {
		// Decimate: average adjacent bins to bound the O(n²) cost.
		factor := (n + 2047) / 2048
		var reduced []float64
		for i := 0; i < n; i += factor {
			sum := 0.0
			for j := i; j < i+factor && j < n; j++ {
				sum += x[j]
			}
			reduced = append(reduced, sum)
		}
		x = reduced
		n = len(x)
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += complex(x[t], 0) * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// autocorr computes the normalized autocorrelation of x at lag.
func autocorr(x []float64, lag int) float64 {
	if lag >= len(x) {
		return 0
	}
	var num, den float64
	for i := 0; i+lag < len(x); i++ {
		num += x[i] * x[i+lag]
	}
	for _, v := range x {
		den += v * v
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// PeriodicitySummary reports Appendix D.1's headline numbers: the fraction
// of discovery groups that are periodic and groups-per-device.
type PeriodicitySummary struct {
	Groups          int
	Periodic        int
	PeriodicFrac    float64
	GroupsPerDevice float64
}

// SummarizePeriodicity computes the summary over a capture. Groups with too
// few events to assess (under four — slow timers in a short capture window)
// are excluded from the denominator.
func SummarizePeriodicity(records []pcap.Record) PeriodicitySummary {
	all := GroupDiscoveryTraffic(records)
	groups := all[:0]
	for _, g := range all {
		if len(g.Times) >= 4 {
			groups = append(groups, g)
		}
	}
	periodic := DetectPeriodicity(groups)
	devices := map[[6]byte]bool{}
	for _, g := range groups {
		devices[g.SrcMAC] = true
	}
	s := PeriodicitySummary{Groups: len(groups), Periodic: periodic}
	if len(groups) > 0 {
		s.PeriodicFrac = float64(periodic) / float64(len(groups))
	}
	if len(devices) > 0 {
		s.GroupsPerDevice = float64(len(groups)) / float64(len(devices))
	}
	return s
}
