package analysis

import (
	"fmt"
	"reflect"
	"testing"

	"iotlan/internal/engine"
	"iotlan/internal/inspector"
)

// partitionByHash splits households into n buckets by the same hash the
// serving layer uses for its fleet shards.
func partitionByHash(hhs []*inspector.Household, n int) [][]*inspector.Household {
	out := make([][]*inspector.Household, n)
	for _, h := range hhs {
		s := engine.ShardOf(h.ID, n)
		out[s] = append(out[s], h)
	}
	return out
}

// TestEntropyPartialMergeInvariant: merging Table 2 partials from any
// partition of the corpus — hash shards of several widths, one partial per
// household, or a lopsided split — reproduces the whole-corpus rows
// exactly, including the floating-point entropy bits and the rendered
// table.
func TestEntropyPartialMergeInvariant(t *testing.T) {
	ds := inspector.Generate(11, 160)
	want := EntropyTableWith(ds, nil)
	wantRendered := RenderEntropyTable(want)

	partitions := map[string][][]*inspector.Household{
		"hash2":        partitionByHash(ds.Households, 2),
		"hash8":        partitionByHash(ds.Households, 8),
		"hash64":       partitionByHash(ds.Households, 64),
		"perHousehold": nil,
		"lopsided":     {ds.Households[:1], ds.Households[1:]},
	}
	for _, h := range ds.Households {
		partitions["perHousehold"] = append(partitions["perHousehold"], []*inspector.Household{h})
	}

	for name, parts := range partitions {
		var ps []*EntropyPartial
		for _, sub := range parts {
			ps = append(ps, EntropyPartialOf(sub, nil))
		}
		got := MergeEntropy(ps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: merged rows differ from batch:\n%v\nvs\n%v", name, got, want)
		}
		if r := RenderEntropyTable(got); r != wantRendered {
			t.Fatalf("%s: rendered table differs:\n%s\nvs\n%s", name, r, wantRendered)
		}
	}

	// Merging with nil partials (a shard that has no cached contribution
	// yet) must be a no-op, and an empty-subset partial must contribute
	// nothing.
	got := MergeEntropy([]*EntropyPartial{
		nil,
		EntropyPartialOf(ds.Households, nil),
		EntropyPartialOf(nil, nil),
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil/empty partials changed the merge")
	}
}

// TestMitigationPartialMergeInvariant: the §7 sweep is partition-invariant
// too — cross-shard re-identification works because session-1 fingerprint
// claims merge by count (a fingerprint duplicated *across* shards must stop
// re-identifying, exactly as a within-shard duplicate does).
func TestMitigationPartialMergeInvariant(t *testing.T) {
	ds := inspector.Generate(12, 140)
	want := MitigationTableWith(ds, nil)
	wantRendered := RenderMitigationTable(want)

	for _, n := range []int{2, 8, 32} {
		var ps []*MitigationPartial
		for _, sub := range partitionByHash(ds.Households, n) {
			ps = append(ps, MitigationPartialOf(sub, nil))
		}
		got := MergeMitigations(ps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged sweep differs from batch:\n%v\nvs\n%v", n, got, want)
		}
		if r := RenderMitigationTable(got); r != wantRendered {
			t.Fatalf("shards=%d: rendered sweep differs", n)
		}
	}

	// The cross-shard duplicate case explicitly: two households engineered
	// to share a fingerprint, placed in different partials. Unmitigated
	// re-identification must treat the pair as ambiguous (no credit), which
	// only happens if session-1 claim counts survive the merge.
	a := ds.Households[0]
	clone := &inspector.Household{ID: "cloneof0", Devices: a.Devices}
	withClone := append(append([]*inspector.Household{}, ds.Households...), clone)
	batch := MergeMitigations([]*MitigationPartial{MitigationPartialOf(withClone, nil)})
	split := MergeMitigations([]*MitigationPartial{
		MitigationPartialOf(withClone[:1], nil), // household 0 alone
		MitigationPartialOf(withClone[1:], nil), // clone in the other shard
	})
	if !reflect.DeepEqual(batch, split) {
		t.Fatalf("cross-shard duplicate handled differently:\n%v\nvs\n%v", batch, split)
	}
	if batch[0].Reidentified >= want[0].Reidentified+1 {
		t.Fatalf("duplicated fingerprint still re-identified: %d (baseline %d)",
			batch[0].Reidentified, want[0].Reidentified)
	}
}

// TestPartialBatchedFold: folding partials batch-by-batch (the streaming
// offline gate in cmd/iotload) equals one whole-corpus pass.
func TestPartialBatchedFold(t *testing.T) {
	const n, batch = 100, 17
	ds := inspector.Generate(13, n)
	var ps []*EntropyPartial
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		ps = append(ps, EntropyPartialOf(ds.Households[lo:hi], nil))
	}
	if got, want := fmt.Sprint(MergeEntropy(ps)), fmt.Sprint(EntropyTableWith(ds, nil)); got != want {
		t.Fatalf("batched fold differs:\n%s\nvs\n%s", got, want)
	}
}

// TestPartialRetraction: Sub is the exact inverse of Add — fold every
// household's singleton partial into a live aggregate, retract a subset, and
// the survivor must equal a batch partial over the remaining households
// *structurally* (DeepEqual of internals, thanks to delete-at-zero
// refcounts), not just in rendered rows.
func TestPartialRetraction(t *testing.T) {
	ds := inspector.Generate(21, 60)
	liveE := NewEntropyPartial()
	liveM := NewMitigationPartial()
	contribs := make([]*HouseholdPartial, len(ds.Households))
	for i, h := range ds.Households {
		contribs[i] = HouseholdPartialOf(h)
		liveE.Add(contribs[i].Entropy)
		liveM.Add(contribs[i].Mitigations)
	}

	// Retract every third household.
	var survivors []*inspector.Household
	for i, h := range ds.Households {
		if i%3 == 0 {
			liveE.Sub(contribs[i].Entropy)
			liveM.Sub(contribs[i].Mitigations)
			continue
		}
		survivors = append(survivors, h)
	}
	wantE := EntropyPartialOf(survivors, nil)
	wantM := MitigationPartialOf(survivors, nil)
	if !reflect.DeepEqual(liveE, wantE) {
		t.Fatal("entropy partial after retraction differs structurally from batch over survivors")
	}
	if !reflect.DeepEqual(liveM, wantM) {
		t.Fatal("mitigation partial after retraction differs structurally from batch over survivors")
	}
	if got, want := fmt.Sprint(MergeEntropy([]*EntropyPartial{liveE})), fmt.Sprint(MergeEntropy([]*EntropyPartial{wantE})); got != want {
		t.Fatalf("rendered entropy rows differ:\n%s\nvs\n%s", got, want)
	}
	if got, want := fmt.Sprint(MergeMitigations([]*MitigationPartial{liveM})), fmt.Sprint(MergeMitigations([]*MitigationPartial{wantM})); got != want {
		t.Fatalf("rendered mitigation rows differ:\n%s\nvs\n%s", got, want)
	}

	// Retracting everything restores the empty partial exactly.
	for i, h := range ds.Households {
		if i%3 != 0 {
			_ = h
			liveE.Sub(contribs[i].Entropy)
			liveM.Sub(contribs[i].Mitigations)
		}
	}
	if !reflect.DeepEqual(liveE, NewEntropyPartial()) {
		t.Fatal("entropy partial not structurally empty after retracting everything")
	}
	if !reflect.DeepEqual(liveM, NewMitigationPartial()) {
		t.Fatal("mitigation partial not structurally empty after retracting everything")
	}
}

// TestPartialUpdate: an in-place update (retract the old contribution, fold
// the new one) equals a batch pass over the updated corpus — the exact
// operation the serving layer performs per re-upload.
func TestPartialUpdate(t *testing.T) {
	ds := inspector.Generate(22, 50)
	alt := inspector.Generate(23, 50) // replacement contents, same corpus size
	live := NewEntropyPartial()
	liveM := NewMitigationPartial()
	for _, h := range ds.Households {
		c := HouseholdPartialOf(h)
		live.Add(c.Entropy)
		liveM.Add(c.Mitigations)
	}

	// Replace households 5 and 17 with different device sets under the same
	// IDs — the "household uploads twice with different contents" case.
	updated := append([]*inspector.Household{}, ds.Households...)
	for _, i := range []int{5, 17} {
		repl := &inspector.Household{ID: ds.Households[i].ID, Devices: alt.Households[i].Devices}
		old := HouseholdPartialOf(ds.Households[i])
		neu := HouseholdPartialOf(repl)
		live.Sub(old.Entropy)
		live.Add(neu.Entropy)
		liveM.Sub(old.Mitigations)
		liveM.Add(neu.Mitigations)
		updated[i] = repl
	}
	if !reflect.DeepEqual(live, EntropyPartialOf(updated, nil)) {
		t.Fatal("entropy partial after update differs structurally from batch over updated corpus")
	}
	if !reflect.DeepEqual(liveM, MitigationPartialOf(updated, nil)) {
		t.Fatal("mitigation partial after update differs structurally from batch over updated corpus")
	}
}

// TestPartialSubUnderflowPanics: retracting a contribution that was never
// added must panic loudly instead of serving silently wrong aggregates.
func TestPartialSubUnderflowPanics(t *testing.T) {
	ds := inspector.Generate(24, 2)
	a := HouseholdPartialOf(ds.Households[0])
	b := HouseholdPartialOf(ds.Households[1])
	live := NewEntropyPartial()
	live.Add(a.Entropy)
	defer func() {
		if recover() == nil {
			t.Fatal("Sub of a never-added contribution did not panic")
		}
	}()
	live.Sub(b.Entropy)
}

// TestPartialCloneIndependence: a clone shares no mutable state with its
// source — mutating the original must not leak into the copy.
func TestPartialCloneIndependence(t *testing.T) {
	ds := inspector.Generate(25, 20)
	live := NewEntropyPartial()
	liveM := NewMitigationPartial()
	for _, h := range ds.Households {
		c := HouseholdPartialOf(h)
		live.Add(c.Entropy)
		liveM.Add(c.Mitigations)
	}
	cloneE, cloneM := live.Clone(), liveM.Clone()
	wantE := fmt.Sprint(MergeEntropy([]*EntropyPartial{cloneE}))
	wantM := fmt.Sprint(MergeMitigations([]*MitigationPartial{cloneM}))
	c := HouseholdPartialOf(ds.Households[0])
	live.Sub(c.Entropy)
	liveM.Sub(c.Mitigations)
	if got := fmt.Sprint(MergeEntropy([]*EntropyPartial{cloneE})); got != wantE {
		t.Fatal("mutating the source changed the entropy clone")
	}
	if got := fmt.Sprint(MergeMitigations([]*MitigationPartial{cloneM})); got != wantM {
		t.Fatal("mutating the source changed the mitigation clone")
	}
	if !reflect.DeepEqual(cloneE, EntropyPartialOf(ds.Households, nil)) {
		t.Fatal("entropy clone differs structurally from batch")
	}
}
