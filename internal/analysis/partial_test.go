package analysis

import (
	"fmt"
	"reflect"
	"testing"

	"iotlan/internal/engine"
	"iotlan/internal/inspector"
)

// partitionByHash splits households into n buckets by the same hash the
// serving layer uses for its fleet shards.
func partitionByHash(hhs []*inspector.Household, n int) [][]*inspector.Household {
	out := make([][]*inspector.Household, n)
	for _, h := range hhs {
		s := engine.ShardOf(h.ID, n)
		out[s] = append(out[s], h)
	}
	return out
}

// TestEntropyPartialMergeInvariant: merging Table 2 partials from any
// partition of the corpus — hash shards of several widths, one partial per
// household, or a lopsided split — reproduces the whole-corpus rows
// exactly, including the floating-point entropy bits and the rendered
// table.
func TestEntropyPartialMergeInvariant(t *testing.T) {
	ds := inspector.Generate(11, 160)
	want := EntropyTableWith(ds, nil)
	wantRendered := RenderEntropyTable(want)

	partitions := map[string][][]*inspector.Household{
		"hash2":        partitionByHash(ds.Households, 2),
		"hash8":        partitionByHash(ds.Households, 8),
		"hash64":       partitionByHash(ds.Households, 64),
		"perHousehold": nil,
		"lopsided":     {ds.Households[:1], ds.Households[1:]},
	}
	for _, h := range ds.Households {
		partitions["perHousehold"] = append(partitions["perHousehold"], []*inspector.Household{h})
	}

	for name, parts := range partitions {
		var ps []*EntropyPartial
		for _, sub := range parts {
			ps = append(ps, EntropyPartialOf(sub, nil))
		}
		got := MergeEntropy(ps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: merged rows differ from batch:\n%v\nvs\n%v", name, got, want)
		}
		if r := RenderEntropyTable(got); r != wantRendered {
			t.Fatalf("%s: rendered table differs:\n%s\nvs\n%s", name, r, wantRendered)
		}
	}

	// Merging with nil partials (a shard that has no cached contribution
	// yet) must be a no-op, and an empty-subset partial must contribute
	// nothing.
	got := MergeEntropy([]*EntropyPartial{
		nil,
		EntropyPartialOf(ds.Households, nil),
		EntropyPartialOf(nil, nil),
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil/empty partials changed the merge")
	}
}

// TestMitigationPartialMergeInvariant: the §7 sweep is partition-invariant
// too — cross-shard re-identification works because session-1 fingerprint
// claims merge by count (a fingerprint duplicated *across* shards must stop
// re-identifying, exactly as a within-shard duplicate does).
func TestMitigationPartialMergeInvariant(t *testing.T) {
	ds := inspector.Generate(12, 140)
	want := MitigationTableWith(ds, nil)
	wantRendered := RenderMitigationTable(want)

	for _, n := range []int{2, 8, 32} {
		var ps []*MitigationPartial
		for _, sub := range partitionByHash(ds.Households, n) {
			ps = append(ps, MitigationPartialOf(sub, nil))
		}
		got := MergeMitigations(ps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged sweep differs from batch:\n%v\nvs\n%v", n, got, want)
		}
		if r := RenderMitigationTable(got); r != wantRendered {
			t.Fatalf("shards=%d: rendered sweep differs", n)
		}
	}

	// The cross-shard duplicate case explicitly: two households engineered
	// to share a fingerprint, placed in different partials. Unmitigated
	// re-identification must treat the pair as ambiguous (no credit), which
	// only happens if session-1 claim counts survive the merge.
	a := ds.Households[0]
	clone := &inspector.Household{ID: "cloneof0", Devices: a.Devices}
	withClone := append(append([]*inspector.Household{}, ds.Households...), clone)
	batch := MergeMitigations([]*MitigationPartial{MitigationPartialOf(withClone, nil)})
	split := MergeMitigations([]*MitigationPartial{
		MitigationPartialOf(withClone[:1], nil), // household 0 alone
		MitigationPartialOf(withClone[1:], nil), // clone in the other shard
	})
	if !reflect.DeepEqual(batch, split) {
		t.Fatalf("cross-shard duplicate handled differently:\n%v\nvs\n%v", batch, split)
	}
	if batch[0].Reidentified >= want[0].Reidentified+1 {
		t.Fatalf("duplicated fingerprint still re-identified: %d (baseline %d)",
			batch[0].Reidentified, want[0].Reidentified)
	}
}

// TestPartialBatchedFold: folding partials batch-by-batch (the streaming
// offline gate in cmd/iotload) equals one whole-corpus pass.
func TestPartialBatchedFold(t *testing.T) {
	const n, batch = 100, 17
	ds := inspector.Generate(13, n)
	var ps []*EntropyPartial
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		ps = append(ps, EntropyPartialOf(ds.Households[lo:hi], nil))
	}
	if got, want := fmt.Sprint(MergeEntropy(ps)), fmt.Sprint(EntropyTableWith(ds, nil)); got != want {
		t.Fatalf("batched fold differs:\n%s\nvs\n%s", got, want)
	}
}
