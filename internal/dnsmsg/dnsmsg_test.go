package dnsmsg

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuestionRoundTrip(t *testing.T) {
	m := &Message{
		ID: 0,
		Questions: []Question{
			{Name: "_hue._tcp.local", Type: TypePTR, Class: ClassIN},
			{Name: "_spotify-connect._tcp.local", Type: TypePTR, Class: ClassIN | UnicastQueryBit},
		},
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Questions) != 2 {
		t.Fatalf("questions: %d", len(got.Questions))
	}
	if got.Questions[0].Name != "_hue._tcp.local" {
		t.Fatalf("name %q", got.Questions[0].Name)
	}
	if got.Questions[0].WantsUnicast() {
		t.Fatal("QM question flagged QU")
	}
	if !got.Questions[1].WantsUnicast() {
		t.Fatal("QU bit lost")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	m := &Message{
		ID:       0,
		Response: true,
		Answers: []Record{
			{Name: "Philips Hue - 685F61._hue._tcp.local", Type: TypeTXT, Class: ClassIN | CacheFlushBit, TTL: 4500,
				TXT: []string{"bridgeid=001788fffe685f61", "modelid=BSB002"}},
			{Name: "_hue._tcp.local", Type: TypePTR, Class: ClassIN, TTL: 4500,
				Target: "Philips Hue - 685F61._hue._tcp.local"},
			{Name: "hue.local", Type: TypeA, Class: ClassIN, TTL: 120,
				Addr: netip.MustParseAddr("192.168.10.23")},
			{Name: "hue.local", Type: TypeAAAA, Class: ClassIN, TTL: 120,
				Addr: netip.MustParseAddr("fe80::217:88ff:fe68:5f61")},
		},
		Extra: []Record{
			{Name: "Philips Hue - 685F61._hue._tcp.local", Type: TypeSRV, Class: ClassIN, TTL: 120,
				Port: 443, Target: "hue.local"},
		},
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response {
		t.Fatal("response bit lost")
	}
	if len(got.Answers) != 4 || len(got.Extra) != 1 {
		t.Fatalf("counts: %d answers %d extra", len(got.Answers), len(got.Extra))
	}
	txt := got.Answers[0]
	if !txt.CacheFlush() {
		t.Fatal("cache-flush bit lost")
	}
	if len(txt.TXT) != 2 || txt.TXT[0] != "bridgeid=001788fffe685f61" {
		t.Fatalf("TXT: %v", txt.TXT)
	}
	if got.Answers[1].Target != "Philips Hue - 685F61._hue._tcp.local" {
		t.Fatalf("PTR target %q", got.Answers[1].Target)
	}
	if got.Answers[2].Addr != netip.MustParseAddr("192.168.10.23") {
		t.Fatalf("A addr %v", got.Answers[2].Addr)
	}
	if got.Answers[3].Addr != netip.MustParseAddr("fe80::217:88ff:fe68:5f61") {
		t.Fatalf("AAAA addr %v", got.Answers[3].Addr)
	}
	srv := got.Extra[0]
	if srv.Port != 443 || srv.Target != "hue.local" {
		t.Fatalf("SRV: %+v", srv)
	}
}

func TestCompressionPointerDecode(t *testing.T) {
	// Hand-build a response with a compression pointer: question name at
	// offset 12, answer name is a pointer to it.
	var b []byte
	b = append(b, 0, 1, 0x80, 0, 0, 1, 0, 1, 0, 0, 0, 0)
	b = appendName(b, "cast.local")
	b = append(b, 0, TypeA, 0, ClassIN)
	b = append(b, 0xc0, 12) // pointer to offset 12
	b = append(b, 0, TypeA, 0, ClassIN, 0, 0, 0, 60, 0, 4, 192, 168, 10, 9)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Name != "cast.local" {
		t.Fatalf("compressed name: %+v", got.Answers)
	}
	if got.Answers[0].Addr != netip.MustParseAddr("192.168.10.9") {
		t.Fatalf("addr %v", got.Answers[0].Addr)
	}
}

func TestCompressionLoopRejected(t *testing.T) {
	var b []byte
	b = append(b, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0)
	b = append(b, 0xc0, 12) // pointer to itself
	b = append(b, 0, TypeA, 0, ClassIN)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestLongLabelTruncated(t *testing.T) {
	long := strings.Repeat("x", 80)
	m := &Message{Questions: []Question{{Name: long + ".local", Type: TypeA, Class: ClassIN}}}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(got.Questions[0].Name, ".")[0]) != 63 {
		t.Fatalf("label not truncated to 63: %q", got.Questions[0].Name)
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		Unmarshal(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshalProperty(t *testing.T) {
	// Any printable service name survives a round trip.
	f := func(a, b uint8) bool {
		name := "_svc" + string(rune('a'+a%26)) + "._tcp.local"
		m := &Message{Questions: []Question{{Name: name, Type: uint16(b)%255 + 1, Class: ClassIN}}}
		got, err := Unmarshal(m.Marshal())
		return err == nil && len(got.Questions) == 1 && got.Questions[0].Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalMalformedAddressRecord(t *testing.T) {
	// An A record whose RDATA is not 4 bytes parses with a zero Addr; Marshal
	// must re-emit the raw bytes rather than panic on Addr.As4 (found by
	// FuzzDecode, corpus entry 62b4df903ee2673e).
	raw := []byte{
		0, 1, 0x80, 0, 0, 0, 0, 1, 0, 0, 0, 0, // header: 1 answer
		0,          // root name
		0, 1, 0, 1, // TYPE A, CLASS IN
		0, 0, 0, 0, // TTL
		0, 2, 0xde, 0xad, // RDLENGTH 2: malformed A rdata
	}
	m, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Marshal()
	if !bytes.Equal(out, raw) {
		t.Fatalf("malformed A record did not round-trip:\n got %x\nwant %x", out, raw)
	}
	// Same for AAAA with short rdata.
	raw[15] = 28 // TYPE AAAA
	m, err = Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Marshal(); !bytes.Equal(out, raw) {
		t.Fatalf("malformed AAAA record did not round-trip:\n got %x\nwant %x", out, raw)
	}
}
