package dnsmsg

import "testing"

// FuzzDecode asserts Unmarshal is total: arbitrary input must yield either
// an error or a message whose fields are safe to walk — never a panic or a
// hang (compression-pointer loops are the classic DNS parser trap).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		for _, q := range m.Questions {
			_ = len(q.Name)
		}
		for _, rr := range append(append([]Record(nil), m.Answers...), m.Extra...) {
			_ = len(rr.Name)
			_ = len(rr.Data)
		}
		// A successfully parsed message must re-marshal without panicking.
		_ = m.Marshal()
	})
}
