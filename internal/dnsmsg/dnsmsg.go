// Package dnsmsg implements the DNS wire format (RFC 1035) subset used by
// the study's traffic: headers, questions and A/AAAA/PTR/SRV/TXT resource
// records, with compression-pointer decoding. It is shared by the mDNS
// responder, the vulnerable device DNS servers and NetBIOS name service
// (whose packets reuse the DNS header layout).
package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Record types used in the study.
const (
	TypeA    = 1
	TypeNS   = 2
	TypePTR  = 12
	TypeTXT  = 16
	TypeAAAA = 28
	TypeSRV  = 33
	TypeNB   = 32 // NetBIOS general name service
	TypeNBST = 33 // NetBIOS node status (NBSTAT); value collides with SRV by design
	TypeANY  = 255
)

// ClassIN is the Internet class; mDNS sets the top bit for cache-flush
// (answers) or unicast-response QU (questions).
const (
	ClassIN         = 1
	CacheFlushBit   = 0x8000
	UnicastQueryBit = 0x8000
)

// Question is a DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// WantsUnicast reports the mDNS QU bit.
func (q Question) WantsUnicast() bool { return q.Class&UnicastQueryBit != 0 }

// Record is a DNS resource record. Exactly one of the typed payload fields
// is meaningful depending on Type.
type Record struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32

	Addr   netip.Addr // A / AAAA
	Target string     // PTR / SRV target
	Port   uint16     // SRV
	TXT    []string   // TXT key=value strings
	Data   []byte     // raw fallback for other types
}

// CacheFlush reports the mDNS cache-flush bit.
func (r Record) CacheFlush() bool { return r.Class&CacheFlushBit != 0 }

// Message is a DNS message.
type Message struct {
	ID        uint16
	Response  bool
	Authority bool
	Questions []Question
	Answers   []Record
	Extra     []Record
}

func appendName(b []byte, name string) []byte {
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if label == "" {
			continue
		}
		if len(label) > 63 {
			label = label[:63]
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

// Marshal encodes the message (no name compression; receivers accept both).
func (m *Message) Marshal() []byte {
	b := make([]byte, 12, 256)
	binary.BigEndian.PutUint16(b[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 0x8000
	}
	if m.Authority {
		flags |= 0x0400
	}
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(b[10:12], uint16(len(m.Extra)))
	for _, q := range m.Questions {
		b = appendName(b, q.Name)
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, rr := range m.Answers {
		b = appendRecord(b, rr)
	}
	for _, rr := range m.Extra {
		b = appendRecord(b, rr)
	}
	return b
}

func appendRecord(b []byte, rr Record) []byte {
	b = appendName(b, rr.Name)
	b = binary.BigEndian.AppendUint16(b, rr.Type)
	b = binary.BigEndian.AppendUint16(b, rr.Class)
	b = binary.BigEndian.AppendUint32(b, rr.TTL)
	var data []byte
	switch rr.Type {
	case TypeA:
		if rr.Addr.Is4() || rr.Addr.Is4In6() {
			a := rr.Addr.As4()
			data = a[:]
		} else {
			data = rr.Data // malformed rdata preserved by Unmarshal
		}
	case TypeAAAA:
		if rr.Addr.IsValid() {
			a := rr.Addr.As16()
			data = a[:]
		} else {
			data = rr.Data // malformed rdata preserved by Unmarshal
		}
	case TypePTR, TypeNS:
		data = appendName(nil, rr.Target)
	case TypeSRV:
		data = make([]byte, 6)
		binary.BigEndian.PutUint16(data[4:6], rr.Port)
		data = appendName(data, rr.Target)
	case TypeTXT:
		for _, s := range rr.TXT {
			if len(s) > 255 {
				s = s[:255]
			}
			data = append(data, byte(len(s)))
			data = append(data, s...)
		}
		if len(data) == 0 {
			data = []byte{0}
		}
	default:
		data = rr.Data
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(data)))
	return append(b, data...)
}

// Unmarshal decodes a DNS message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("dnsmsg: short header")
	}
	m := &Message{
		ID:       binary.BigEndian.Uint16(data[0:2]),
		Response: data[2]&0x80 != 0,
	}
	m.Authority = binary.BigEndian.Uint16(data[2:4])&0x0400 != 0
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(data, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(data) {
			return nil, fmt.Errorf("dnsmsg: truncated question")
		}
		q.Type = binary.BigEndian.Uint16(data[off : off+2])
		q.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += 4
		m.Questions = append(m.Questions, q)
	}
	readRRs := func(n int, dst *[]Record) error {
		for i := 0; i < n; i++ {
			var rr Record
			rr.Name, off, err = readName(data, off)
			if err != nil {
				return err
			}
			if off+10 > len(data) {
				return fmt.Errorf("dnsmsg: truncated record header")
			}
			rr.Type = binary.BigEndian.Uint16(data[off : off+2])
			rr.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
			rr.TTL = binary.BigEndian.Uint32(data[off+4 : off+8])
			n := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
			off += 10
			if off+n > len(data) {
				return fmt.Errorf("dnsmsg: truncated rdata")
			}
			rdata := data[off : off+n]
			rdStart := off
			off += n
			switch rr.Type {
			case TypeA:
				if n == 4 {
					rr.Addr = netip.AddrFrom4([4]byte(rdata))
				} else {
					rr.Data = append([]byte(nil), rdata...)
				}
			case TypeAAAA:
				if n == 16 {
					rr.Addr = netip.AddrFrom16([16]byte(rdata))
				} else {
					rr.Data = append([]byte(nil), rdata...)
				}
			case TypePTR, TypeNS:
				rr.Target, _, _ = readName(data, rdStart)
			case TypeSRV:
				if n >= 6 {
					rr.Port = binary.BigEndian.Uint16(rdata[4:6])
					rr.Target, _, _ = readName(data, rdStart+6)
				}
			case TypeTXT:
				for p := 0; p < len(rdata); {
					l := int(rdata[p])
					p++
					if p+l > len(rdata) {
						break
					}
					if l > 0 {
						rr.TXT = append(rr.TXT, string(rdata[p:p+l]))
					}
					p += l
				}
			default:
				rr.Data = append([]byte(nil), rdata...)
			}
			*dst = append(*dst, rr)
		}
		return nil
	}
	if err := readRRs(an, &m.Answers); err != nil {
		return nil, err
	}
	var authority []Record
	if err := readRRs(ns, &authority); err != nil {
		return nil, err
	}
	if err := readRRs(ar, &m.Extra); err != nil {
		return nil, err
	}
	return m, nil
}

// readName decodes a (possibly compressed) domain name starting at off.
func readName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 32 {
			return "", 0, fmt.Errorf("dnsmsg: compression loop")
		}
		if off >= len(data) {
			return "", 0, fmt.Errorf("dnsmsg: truncated name")
		}
		l := int(data[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return sb.String(), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, fmt.Errorf("dnsmsg: truncated pointer")
			}
			ptr := int(binary.BigEndian.Uint16(data[off:off+2]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("dnsmsg: forward pointer")
			}
			off = ptr
		default:
			if off+1+l > len(data) {
				return "", 0, fmt.Errorf("dnsmsg: truncated label")
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[off+1 : off+1+l])
			off += 1 + l
		}
	}
}
