// Package rtp implements the RTP/RTCP header codec (RFC 3550 subset) behind
// the lab's multi-room-audio synchronisation traffic: Echo devices stream
// RTP over UDP 55444, Google devices over 10000–10010 — traffic both nDPI
// and tshark misclassify as STUN (Appendix C.2).
package rtp

import (
	"encoding/binary"
	"fmt"
)

// EchoPort is the Amazon multi-room audio UDP port.
const EchoPort = 55444

// GooglePortLow/High bound the Cast sync port range.
const (
	GooglePortLow  = 10000
	GooglePortHigh = 10010
)

// Header is an RTP fixed header.
type Header struct {
	PayloadType uint8
	Seq         uint16
	Timestamp   uint32
	SSRC        uint32
	Marker      bool
}

// Marshal encodes header + payload.
func (h *Header) Marshal(payload []byte) []byte {
	out := make([]byte, 12+len(payload))
	out[0] = 0x80 // version 2
	out[1] = h.PayloadType & 0x7f
	if h.Marker {
		out[1] |= 0x80
	}
	binary.BigEndian.PutUint16(out[2:4], h.Seq)
	binary.BigEndian.PutUint32(out[4:8], h.Timestamp)
	binary.BigEndian.PutUint32(out[8:12], h.SSRC)
	copy(out[12:], payload)
	return out
}

// Unmarshal decodes an RTP packet.
func Unmarshal(data []byte) (*Header, []byte, error) {
	if len(data) < 12 {
		return nil, nil, fmt.Errorf("rtp: short packet")
	}
	if data[0]>>6 != 2 {
		return nil, nil, fmt.Errorf("rtp: version %d", data[0]>>6)
	}
	h := &Header{
		PayloadType: data[1] & 0x7f,
		Marker:      data[1]&0x80 != 0,
		Seq:         binary.BigEndian.Uint16(data[2:4]),
		Timestamp:   binary.BigEndian.Uint32(data[4:8]),
		SSRC:        binary.BigEndian.Uint32(data[8:12]),
	}
	return h, data[12:], nil
}

// LooksLikeRTP is the heuristic classifiers need: version 2, plausible
// payload type, non-zero SSRC. It deliberately overlaps with STUN's shape
// on some inputs, reproducing the Appendix C.2 confusion.
func LooksLikeRTP(data []byte) bool {
	if len(data) < 12 || data[0]>>6 != 2 {
		return false
	}
	pt := data[1] & 0x7f
	return pt < 96 && binary.BigEndian.Uint32(data[8:12]) != 0
}
