package rtp

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	h := &Header{PayloadType: 97 & 0x7f, Seq: 1000, Timestamp: 160000, SSRC: 0xdeadbeef, Marker: true}
	pkt := h.Marshal([]byte("audio"))
	got, payload, err := Unmarshal(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1000 || got.SSRC != 0xdeadbeef || !got.Marker {
		t.Fatalf("header: %+v", got)
	}
	if !bytes.Equal(payload, []byte("audio")) {
		t.Fatalf("payload %q", payload)
	}
}

func TestUnmarshalRejects(t *testing.T) {
	if _, _, err := Unmarshal([]byte{0x80}); err == nil {
		t.Fatal("short accepted")
	}
	bad := (&Header{SSRC: 1}).Marshal(nil)
	bad[0] = 0x40 // version 1
	if _, _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLooksLikeRTP(t *testing.T) {
	good := (&Header{PayloadType: 10, SSRC: 42}).Marshal([]byte("x"))
	if !LooksLikeRTP(good) {
		t.Fatal("real RTP not recognised")
	}
	if LooksLikeRTP([]byte("GET / HTTP/1.1\r\n")) {
		t.Fatal("HTTP mistaken for RTP")
	}
	zeroSSRC := (&Header{PayloadType: 10}).Marshal(nil)
	if LooksLikeRTP(zeroSSRC) {
		t.Fatal("zero SSRC should fail the heuristic")
	}
}
