// Package chaos is the deterministic fault-injection layer for the virtual
// LAN. The paper's measurements come from a lossy, messy real network —
// retransmissions, devices rebooting mid-capture, malformed local frames —
// and this package reproduces those conditions on the simulated testbed so
// the analysis pipeline's robustness is exercised, not assumed.
//
// A Plan configures per-link impairments (probabilistic frame loss,
// duplication, reordering via jittered redelivery, bounded extra latency,
// partition windows), device churn (crash/restart with a DHCP re-lease) and
// malformed-frame injection (truncated or bit-flipped copies of real
// frames). An Engine attaches a Plan to a lan.Network.
//
// Determinism contract: every random decision is drawn from a dedicated
// stream derived from the scheduler seed (sim.Scheduler.SubRand), and every
// decision is made in simulation-event context. The same (seed, Plan) pair
// therefore produces a byte-identical capture — and byte-identical analysis
// exports — on any analysis worker count, matching the engine contract of
// the parallel analysis layer. Enabling chaos never perturbs the base
// simulation's random sequence, so a plan changes only what it impairs.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/sim"
)

// rngStream is the SubRand stream tag for the chaos random stream.
const rngStream = 0xc4a05

// Partition is one network-partition window: for its duration, a
// deterministic subset of stations (chosen by hashing their MAC) is isolated
// from the rest of the LAN. Frames crossing the partition boundary are
// dropped with reason lan.DropChaosPartition; traffic within either side
// still flows.
type Partition struct {
	// Start is the window's offset from the simulation epoch.
	Start time.Duration
	// Duration is how long the window lasts.
	Duration time.Duration
	// Isolate is the fraction of stations on the isolated side (0,1).
	Isolate float64
}

func (p Partition) active(since time.Duration) bool {
	return since >= p.Start && since < p.Start+p.Duration
}

// Churn schedules periodic device crash/restart cycles. A crashed device
// goes silent and leaves the switch's station table; on restart it rejoins
// and re-runs its DHCP lease exchange, like a real device rebooting
// mid-capture.
type Churn struct {
	// Start delays the first crash (lets the lab boot and lease addresses).
	Start time.Duration
	// Interval is the crash cadence, with ±Jitter applied per cycle.
	Interval time.Duration
	Jitter   time.Duration
	// Downtime is how long a crashed device stays down before restarting.
	Downtime time.Duration
	// MaxEvents bounds the number of crash cycles (0 = unbounded).
	MaxEvents int
}

// Plan is a full fault-injection configuration. The zero Plan injects
// nothing (Enabled reports false).
type Plan struct {
	// Name labels the plan in telemetry and CLI output.
	Name string
	// Loss is the per-delivery frame-loss probability [0,1).
	Loss float64
	// Duplicate is the per-delivery probability of one extra delayed copy.
	Duplicate float64
	// Reorder is the per-delivery probability of a jittered redelivery: the
	// frame is held back several base latencies, arriving after frames sent
	// later.
	Reorder float64
	// MaxExtraLatency adds a uniform random delay in [0, MaxExtraLatency)
	// to every delivery (0 disables).
	MaxExtraLatency time.Duration
	// Corrupt is the per-sent-frame probability of injecting a malformed
	// copy (truncated or bit-flipped) of that frame onto the LAN.
	Corrupt float64
	// Partitions are the partition windows, applied independently.
	Partitions []Partition
	// Churn configures device crash/restart cycles (nil disables).
	Churn *Churn
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.Loss > 0 || p.Duplicate > 0 || p.Reorder > 0 || p.MaxExtraLatency > 0 ||
		p.Corrupt > 0 || len(p.Partitions) > 0 || p.Churn != nil
}

// String renders the plan compactly for CLI/summary output.
func (p Plan) String() string {
	if !p.Enabled() {
		return "off"
	}
	var parts []string
	if p.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%.1f%%", p.Loss*100))
	}
	if p.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.1f%%", p.Duplicate*100))
	}
	if p.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%.1f%%", p.Reorder*100))
	}
	if p.MaxExtraLatency > 0 {
		parts = append(parts, fmt.Sprintf("jitter<%s", p.MaxExtraLatency))
	}
	if p.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%.1f%%", p.Corrupt*100))
	}
	if len(p.Partitions) > 0 {
		parts = append(parts, fmt.Sprintf("partitions=%d", len(p.Partitions)))
	}
	if p.Churn != nil {
		parts = append(parts, fmt.Sprintf("churn@%s", p.Churn.Interval))
	}
	name := p.Name
	if name == "" {
		name = "custom"
	}
	return name + "(" + strings.Join(parts, " ") + ")"
}

// profiles are the named impairment profiles the CLI exposes. Each maps a
// degraded-network condition the paper's captures exhibit onto plan knobs:
// "lossy" is ordinary Wi-Fi contention, "flaky" adds malformed local frames
// (the honeypots' garbage traffic), "partition" models a room dropping off
// the AP, "churn" models devices rebooting mid-capture, and "degraded"
// combines everything for worst-case robustness runs.
var profiles = []Plan{
	{Name: "lossy", Loss: 0.05, Duplicate: 0.01, Reorder: 0.03, MaxExtraLatency: 2 * time.Millisecond},
	{Name: "flaky", Loss: 0.02, Corrupt: 0.03, MaxExtraLatency: time.Millisecond},
	{Name: "partition", Partitions: []Partition{
		{Start: 5 * time.Minute, Duration: 4 * time.Minute, Isolate: 0.4},
		{Start: 20 * time.Minute, Duration: 6 * time.Minute, Isolate: 0.5},
	}},
	{Name: "churn", Churn: &Churn{Start: 4 * time.Minute, Interval: 3 * time.Minute,
		Jitter: time.Minute, Downtime: 90 * time.Second}},
	{Name: "degraded", Loss: 0.04, Duplicate: 0.01, Reorder: 0.02,
		MaxExtraLatency: 2 * time.Millisecond, Corrupt: 0.02,
		Partitions: []Partition{{Start: 90 * time.Second, Duration: time.Minute, Isolate: 0.3}},
		Churn:      &Churn{Start: time.Minute, Interval: 75 * time.Second, Downtime: 30 * time.Second}},
}

// Profiles returns the named impairment profiles.
func Profiles() []Plan {
	out := make([]Plan, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileNames lists the named profiles, sorted.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// Profile resolves a named profile, case-insensitively. "off" and "" return
// the zero (disabled) Plan.
func Profile(name string) (Plan, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	if want == "" || want == "off" || want == "none" {
		return Plan{}, nil
	}
	for _, p := range profiles {
		if p.Name == want {
			return p, nil
		}
	}
	return Plan{}, fmt.Errorf("chaos: unknown profile %q (known: %s, off)", name, strings.Join(ProfileNames(), ", "))
}

// Churnable is a device runtime the churn loop can crash and restart. Crash
// reports whether the device actually went down (already-crashed or
// never-started devices refuse).
type Churnable interface {
	Name() string
	Crash() bool
	Restart()
}

// Engine applies a Plan to a network. Create one with New before the
// simulation starts.
type Engine struct {
	Plan  Plan
	sched *sim.Scheduler
	net   *lan.Network
	rng   *rand.Rand

	// injecting guards the corruption tap against re-corrupting its own
	// injected frames (the simulation is single-threaded, so a flag works).
	injecting bool

	faults map[string]*obs.Counter
}

// New attaches a fault-injection engine for plan to the network. The engine
// installs the network's Impair hook and, when the plan corrupts frames, a
// capture-style tap that schedules malformed copies. Call StartChurn after
// building device runtimes to enable crash/restart cycles.
func New(sched *sim.Scheduler, network *lan.Network, plan Plan) *Engine {
	e := &Engine{
		Plan:   plan,
		sched:  sched,
		net:    network,
		rng:    sched.SubRand(rngStream),
		faults: make(map[string]*obs.Counter),
	}
	if !plan.Enabled() {
		return e
	}
	network.Impair = e.impair
	if plan.Corrupt > 0 {
		network.Tap(e.maybeCorrupt)
	}
	return e
}

// count records one injected fault under chaos_faults{kind=...}.
func (e *Engine) count(kind string) {
	c, ok := e.faults[kind]
	if !ok {
		c = e.sched.Telemetry.Registry.Counter("chaos_faults", "kind", kind)
		e.faults[kind] = c
	}
	c.Inc()
}

// Faults reports the total number of injected faults across all kinds.
func (e *Engine) Faults() uint64 {
	return e.sched.Telemetry.Registry.Total("chaos_faults")
}

// impair is the per-delivery decision hook. Draw order is fixed (partition,
// loss, latency, reorder, duplicate) so a plan's random stream is stable.
func (e *Engine) impair(src, dst netx.MAC, multicast bool, frame []byte) lan.Verdict {
	since := e.sched.Now().Sub(sim.Epoch)
	for i, pw := range e.Plan.Partitions {
		if pw.active(since) && isolated(src, i, pw.Isolate) != isolated(dst, i, pw.Isolate) {
			e.count("partition")
			return lan.Verdict{Drop: true, Reason: lan.DropChaosPartition}
		}
	}
	if e.Plan.Loss > 0 && e.rng.Float64() < e.Plan.Loss {
		e.count("loss")
		return lan.Verdict{Drop: true, Reason: lan.DropChaosLoss}
	}
	var v lan.Verdict
	if e.Plan.MaxExtraLatency > 0 {
		v.ExtraDelay = time.Duration(e.rng.Int63n(int64(e.Plan.MaxExtraLatency)))
	}
	if e.Plan.Reorder > 0 && e.rng.Float64() < e.Plan.Reorder {
		// Hold the frame back several propagation delays: frames sent later
		// overtake it, which is what reordering looks like to a receiver.
		v.ExtraDelay += e.net.Latency * time.Duration(2+e.rng.Intn(6))
		e.count("reorder")
	}
	if e.Plan.Duplicate > 0 && e.rng.Float64() < e.Plan.Duplicate {
		v.Duplicates = 1
		v.DuplicateGap = e.net.Latency
		e.count("duplicate")
	}
	return v
}

// isolated deterministically assigns a MAC to one side of partition idx via
// a splitmix64-style hash, so a plan partitions the same stations on every
// run regardless of attach order.
func isolated(mac netx.MAC, idx int, frac float64) bool {
	var x uint64
	for _, b := range mac {
		x = x<<8 | uint64(b)
	}
	x ^= uint64(idx+1) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x%10000) < frac*10000
}

// maybeCorrupt observes every sent frame (as a tap) and occasionally
// schedules a malformed copy — truncated, bit-flipped, or both — shortly
// after the original, reproducing the malformed local traffic real captures
// contain. Injected copies are themselves exempt from corruption.
func (e *Engine) maybeCorrupt(_ time.Time, frame []byte) {
	if e.injecting || len(frame) < 15 {
		return
	}
	if e.rng.Float64() >= e.Plan.Corrupt {
		return
	}
	bad := append([]byte(nil), frame...)
	mode := e.rng.Intn(3)
	if mode == 0 || mode == 2 { // truncate somewhere past the first byte
		bad = bad[:1+e.rng.Intn(len(bad)-1)]
	}
	if mode == 1 || mode == 2 { // flip 1–4 random bits
		for i, flips := 0, 1+e.rng.Intn(4); i < flips && len(bad) > 0; i++ {
			pos := e.rng.Intn(len(bad))
			bad[pos] ^= 1 << uint(e.rng.Intn(8))
		}
	}
	e.count("corrupt")
	delay := time.Duration(1+e.rng.Intn(2000)) * time.Microsecond
	e.sched.AfterTagged("chaos", delay, func() {
		e.injecting = true
		e.net.Send(bad)
		e.injecting = false
	})
}

// StartChurn begins the crash/restart loop over the given devices. Each
// cycle crashes one deterministically chosen device and restarts it after
// the plan's downtime. Safe to call with an empty slice or a plan without
// churn (no-op).
func (e *Engine) StartChurn(devs []Churnable) {
	c := e.Plan.Churn
	if c == nil || len(devs) == 0 {
		return
	}
	events := 0
	var timer *sim.Timer
	timer = e.sched.EveryTagged("chaos", c.Start, c.Interval, c.Jitter, func() {
		if c.MaxEvents > 0 && events >= c.MaxEvents {
			timer.Stop()
			return
		}
		d := devs[e.rng.Intn(len(devs))]
		if !d.Crash() {
			return // already down or never started; try again next cycle
		}
		events++
		e.count("crash")
		if e.sched.Tracing() {
			e.sched.TraceEvent("chaos", "crash", "device", d.Name())
		}
		e.sched.AfterTagged("chaos", c.Downtime, func() {
			d.Restart()
			e.count("restart")
			if e.sched.Tracing() {
				e.sched.TraceEvent("chaos", "restart", "device", d.Name())
			}
		})
	})
}
