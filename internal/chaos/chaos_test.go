package chaos

import (
	"testing"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
)

type stubNode struct {
	mac    netx.MAC
	frames [][]byte
}

func (n *stubNode) MAC() netx.MAC            { return n.mac }
func (n *stubNode) HandleFrame(frame []byte) { n.frames = append(n.frames, frame) }

func frame(t *testing.T, src, dst netx.MAC) []byte {
	t.Helper()
	f, err := layers.Serialize(
		&layers.Ethernet{Src: src, Dst: dst, EtherType: layers.EtherTypeIPv4},
		layers.RawPayload(make([]byte, 40)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func setup(t *testing.T, seed int64, plan Plan) (*sim.Scheduler, *lan.Network, *Engine, *stubNode, *stubNode) {
	t.Helper()
	s := sim.NewScheduler(seed)
	n := lan.New(s)
	e := New(s, n, plan)
	a := &stubNode{mac: netx.MAC{2, 0, 0, 0, 0, 1}}
	b := &stubNode{mac: netx.MAC{2, 0, 0, 0, 0, 2}}
	n.Attach(a)
	n.Attach(b)
	return s, n, e, a, b
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	s, n, e, a, b := setup(t, 1, Plan{})
	if n.Impair != nil {
		t.Fatal("zero plan installed an impair hook")
	}
	for i := 0; i < 50; i++ {
		n.Send(frame(t, a.mac, b.mac))
	}
	s.RunFor(time.Second)
	if len(b.frames) != 50 {
		t.Fatalf("perfect network delivered %d/50", len(b.frames))
	}
	if e.Faults() != 0 {
		t.Fatalf("zero plan injected %d faults", e.Faults())
	}
}

func TestLossDropsSomeFramesAndCountsThem(t *testing.T) {
	s, n, e, a, b := setup(t, 7, Plan{Name: "t", Loss: 0.3})
	const sent = 400
	for i := 0; i < sent; i++ {
		n.Send(frame(t, a.mac, b.mac))
	}
	s.RunFor(time.Second)
	lost := sent - len(b.frames)
	if lost == 0 || lost == sent {
		t.Fatalf("loss=0.3 dropped %d/%d frames", lost, sent)
	}
	if got := s.Telemetry.Registry.CounterValue("chaos_faults{kind=loss}"); got != uint64(lost) {
		t.Fatalf("loss counter %d, want %d", got, lost)
	}
	if got := s.Telemetry.Registry.CounterValue("lan_frames_dropped{reason=chaos-loss}"); got != uint64(lost) {
		t.Fatalf("drop counter %d, want %d", got, lost)
	}
	if e.Faults() != uint64(lost) {
		t.Fatalf("Faults() = %d, want %d", e.Faults(), lost)
	}
}

func TestLossIsSeedDeterministic(t *testing.T) {
	deliveries := func(seed int64) int {
		s, n, _, a, b := setup(t, seed, Plan{Loss: 0.25})
		for i := 0; i < 200; i++ {
			n.Send(frame(t, a.mac, b.mac))
		}
		s.RunFor(time.Second)
		return len(b.frames)
	}
	if deliveries(42) != deliveries(42) {
		t.Fatal("same seed produced different loss patterns")
	}
	// Different seeds should (overwhelmingly) differ.
	if deliveries(1) == deliveries(2) && deliveries(3) == deliveries(4) {
		t.Fatal("loss pattern ignores the seed")
	}
}

func TestDuplicationDeliversExtraCopies(t *testing.T) {
	s, n, _, a, b := setup(t, 3, Plan{Duplicate: 1.0})
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if len(b.frames) != 2 {
		t.Fatalf("duplicate=1.0 delivered %d copies, want 2", len(b.frames))
	}
}

func TestExtraLatencyStaysBounded(t *testing.T) {
	s, n, _, a, b := setup(t, 5, Plan{MaxExtraLatency: 5 * time.Millisecond})
	start := s.Now()
	var deliveredAt time.Time
	hook := &hookNode{stubNode: b, sched: s, at: &deliveredAt}
	n.Attach(hook)
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	d := deliveredAt.Sub(start)
	if d < n.Latency || d >= n.Latency+5*time.Millisecond {
		t.Fatalf("delivery delay %v outside [%v, %v)", d, n.Latency, n.Latency+5*time.Millisecond)
	}
}

type hookNode struct {
	*stubNode
	sched *sim.Scheduler
	at    *time.Time
}

func (h *hookNode) HandleFrame(frame []byte) {
	*h.at = h.sched.Now()
	h.stubNode.HandleFrame(frame)
}

func TestPartitionBlocksCrossTrafficOnlyDuringWindow(t *testing.T) {
	plan := Plan{Partitions: []Partition{{Start: time.Minute, Duration: time.Minute, Isolate: 0.5}}}
	// Find two MACs on opposite sides of partition 0.
	var left, right netx.MAC
	found := false
	for i := byte(1); i < 100 && !found; i++ {
		m := netx.MAC{2, 0, 0, 0, 0, i}
		if isolated(m, 0, 0.5) {
			left = m
		} else {
			right = m
		}
		found = left != (netx.MAC{}) && right != (netx.MAC{})
	}
	if !found {
		t.Fatal("hash put every MAC on one side")
	}
	s := sim.NewScheduler(9)
	n := lan.New(s)
	New(s, n, plan)
	a := &stubNode{mac: left}
	b := &stubNode{mac: right}
	n.Attach(a)
	n.Attach(b)

	n.Send(frame(t, a.mac, b.mac)) // before the window: flows
	s.RunFor(90 * time.Second)     // now inside the window
	n.Send(frame(t, a.mac, b.mac)) // dropped
	s.RunFor(60 * time.Second)     // past the window
	n.Send(frame(t, a.mac, b.mac)) // flows again
	s.RunFor(time.Second)

	if len(b.frames) != 2 {
		t.Fatalf("cross-partition deliveries = %d, want 2", len(b.frames))
	}
	if got := s.Telemetry.Registry.CounterValue("lan_frames_dropped{reason=chaos-partition}"); got != 1 {
		t.Fatalf("partition drops = %d, want 1", got)
	}
}

func TestPartitionSideAssignmentIsStable(t *testing.T) {
	m := netx.MAC{0x02, 0x42, 0xc0, 0xa8, 0x0a, 0x07}
	want := isolated(m, 1, 0.4)
	for i := 0; i < 10; i++ {
		if isolated(m, 1, 0.4) != want {
			t.Fatal("isolated() is not a pure function of (mac, idx, frac)")
		}
	}
	// Different partition indices should re-deal the sides for some MACs.
	differs := false
	for i := byte(0); i < 50; i++ {
		m := netx.MAC{2, 0, 0, 0, 1, i}
		if isolated(m, 0, 0.5) != isolated(m, 1, 0.5) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("partition index never changes side assignment")
	}
}

func TestCorruptInjectsMalformedCopies(t *testing.T) {
	s, n, _, a, b := setup(t, 11, Plan{Corrupt: 1.0})
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if got := s.Telemetry.Registry.CounterValue("chaos_faults{kind=corrupt}"); got != 1 {
		t.Fatalf("corrupt faults = %d, want 1 (no re-corruption of injected frames)", got)
	}
	// The original always arrives; the mutant may or may not still be
	// routable to b, but the network must have processed it without panic.
	if len(b.frames) < 1 {
		t.Fatal("original frame lost")
	}
}

func TestChurnCrashesAndRestarts(t *testing.T) {
	plan := Plan{Churn: &Churn{Start: time.Second, Interval: 10 * time.Second, Downtime: 2 * time.Second, MaxEvents: 3}}
	s := sim.NewScheduler(13)
	n := lan.New(s)
	e := New(s, n, plan)
	d := &fakeChurnable{}
	e.StartChurn([]Churnable{d})
	s.RunFor(2 * time.Minute)
	if d.crashes != 3 || d.restarts != 3 {
		t.Fatalf("crashes=%d restarts=%d, want 3/3 (MaxEvents)", d.crashes, d.restarts)
	}
	if got := s.Telemetry.Registry.CounterValue("chaos_faults{kind=crash}"); got != 3 {
		t.Fatalf("crash faults = %d, want 3", got)
	}
}

type fakeChurnable struct {
	down              bool
	crashes, restarts int
}

func (f *fakeChurnable) Name() string { return "fake" }
func (f *fakeChurnable) Crash() bool {
	if f.down {
		return false
	}
	f.down = true
	f.crashes++
	return true
}
func (f *fakeChurnable) Restart() { f.down = false; f.restarts++ }

func TestProfileResolution(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := Profile(name)
		if err != nil || !p.Enabled() {
			t.Fatalf("profile %q: err=%v enabled=%v", name, err, p.Enabled())
		}
	}
	if p, err := Profile("off"); err != nil || p.Enabled() {
		t.Fatalf("off: err=%v enabled=%v", err, p.Enabled())
	}
	if _, err := Profile("no-such-profile"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if (Plan{}).String() != "off" {
		t.Fatal("zero plan should render as off")
	}
}

func TestEnablingChaosDoesNotConsumeSchedulerRNG(t *testing.T) {
	draw := func(plan Plan) int64 {
		s, n, _, a, b := setup(t, 21, plan)
		for i := 0; i < 100; i++ {
			n.Send(frame(t, a.mac, b.mac))
		}
		s.RunFor(time.Second)
		return s.Rand().Int63()
	}
	if draw(Plan{}) != draw(Plan{Loss: 0.5, Corrupt: 0.5, MaxExtraLatency: time.Millisecond}) {
		t.Fatal("chaos perturbed the scheduler's main random stream")
	}
}
