package tplink

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestObfuscateRoundTrip(t *testing.T) {
	f := func(plain []byte) bool {
		return bytes.Equal(Deobfuscate(Obfuscate(plain)), plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObfuscateKnownVector(t *testing.T) {
	// The classic softScheck vector: "{" ^ 171 = 0xd0.
	got := Obfuscate([]byte("{"))
	if got[0] != 0xd0 {
		t.Fatalf("first byte %#x, want 0xd0", got[0])
	}
}

func TestFrameTCPRoundTrip(t *testing.T) {
	body := []byte(QuerySysinfo)
	framed := FrameTCP(body)
	got, err := UnframeTCP(framed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("unframed %q", got)
	}
	if _, err := UnframeTCP(framed[:3]); err == nil {
		t.Fatal("short frame accepted")
	}
	if _, err := UnframeTCP([]byte{0, 0, 0, 200, 1, 2}); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestParseSysinfoResponse(t *testing.T) {
	raw := []byte(`{"system":{"get_sysinfo":{"deviceId":"8006E8E9017F556D283C850B4E29BC1F185334E5","hwId":"60FF6B258734EA6880E186F8C96DDC61","oemId":"FFF22CFF774A0B89F7624BFC6F50D5DE","alias":"TP-Link Plug","dev_name":"Wi-Fi Smart Plug With Energy Monitoring","latitude":42.337681,"longitude":-71.087036}}}`)
	info, err := ParseSysinfoResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if info.DeviceID != "8006E8E9017F556D283C850B4E29BC1F185334E5" {
		t.Fatalf("deviceId %q", info.DeviceID)
	}
	if info.Latitude != 42.337681 || info.Longitude != -71.087036 {
		t.Fatalf("geolocation lost: %v %v", info.Latitude, info.Longitude)
	}
	if _, err := ParseSysinfoResponse([]byte(`{"system":{}}`)); err == nil {
		t.Fatal("empty system accepted")
	}
}

type env struct {
	sched *sim.Scheduler
	net   *lan.Network
}

func newEnv() *env {
	s := sim.NewScheduler(1)
	return &env{sched: s, net: lan.New(s)}
}

func (e *env) host(last byte) *stack.Host {
	h := stack.NewHost(e.net, netx.MAC{0x50, 0xc7, 0xbf, 0, 0, last}, stack.DefaultPolicy)
	h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
	return h
}

func plugInfo() SysInfo {
	return SysInfo{
		DeviceID: "8006E8E9017F556D283C850B4E29BC1F185334E5",
		HWID:     "60FF6B258734EA6880E186F8C96DDC61",
		OEMID:    "FFF22CFF774A0B89F7624BFC6F50D5DE",
		Alias:    "TP-Link Plug",
		Model:    "HS110(US)",
		Latitude: 42.337681, Longitude: -71.087036,
	}
}

func TestBroadcastDiscovery(t *testing.T) {
	e := newEnv()
	plug := &Device{Host: e.host(40), Info: plugInfo()}
	plug.Start()

	echo := e.host(50)
	var found []*SysInfo
	Discover(echo, func(info *SysInfo, from netip.Addr) { found = append(found, info) })
	e.sched.RunFor(time.Second)

	if len(found) != 1 {
		t.Fatalf("discovered %d devices", len(found))
	}
	if found[0].Latitude != 42.337681 {
		t.Fatal("geolocation not exposed via discovery")
	}
	if found[0].OEMID != plugInfo().OEMID {
		t.Fatalf("oemId %q", found[0].OEMID)
	}
}

func TestUnauthenticatedControl(t *testing.T) {
	e := newEnv()
	var turnedOn *bool
	plug := &Device{Host: e.host(40), Info: plugInfo(), OnControl: func(on bool) { turnedOn = &on }}
	plug.Start()

	attacker := e.host(66)
	var ok *bool
	Control(attacker, netip.MustParseAddr("192.168.10.40"), true, func(b bool) { ok = &b })
	e.sched.RunFor(time.Second)

	if turnedOn == nil || !*turnedOn {
		t.Fatal("relay not switched by unauthenticated attacker")
	}
	if ok == nil || !*ok {
		t.Fatal("control ack not received")
	}
	if plug.Info.RelayState != 1 {
		t.Fatalf("relay state %d", plug.Info.RelayState)
	}
}

func TestDeviceIgnoresGarbage(t *testing.T) {
	e := newEnv()
	plug := &Device{Host: e.host(40), Info: plugInfo()}
	plug.Start()
	attacker := e.host(66)
	n := 0
	sock := attacker.OpenUDPEphemeral(func(stack.Datagram) { n++ })
	sock.SendTo(netip.MustParseAddr("192.168.10.40"), Port, []byte("not tplink"))
	e.sched.RunFor(time.Second)
	if n != 0 {
		t.Fatalf("device answered garbage %d times", n)
	}
}
