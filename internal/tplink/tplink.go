// Package tplink implements the TP-Link Smart Home Protocol (TPLINK-SHP):
// the XOR-autokey "encryption", the JSON command set, UDP 9999 broadcast
// discovery and TCP 9999 control. The protocol answers get_sysinfo with the
// device's geolocation, deviceId, hwId and oemId in the clear, and accepts
// control commands without authentication (§5.1) — the study's starkest
// exposure case.
package tplink

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/stack"
)

// Port is the TPLINK-SHP UDP/TCP port.
const Port = 9999

// initialKey is the protocol's fixed autokey seed (171).
const initialKey = 171

// Obfuscate applies the XOR-autokey cipher used on UDP datagrams.
func Obfuscate(plain []byte) []byte {
	out := make([]byte, len(plain))
	key := byte(initialKey)
	for i, b := range plain {
		out[i] = b ^ key
		key = out[i]
	}
	return out
}

// Deobfuscate reverses Obfuscate.
func Deobfuscate(cipher []byte) []byte {
	out := make([]byte, len(cipher))
	key := byte(initialKey)
	for i, b := range cipher {
		out[i] = b ^ key
		key = b
	}
	return out
}

// FrameTCP prepends the 4-byte big-endian length used on TCP connections.
func FrameTCP(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// UnframeTCP strips the TCP length prefix.
func UnframeTCP(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("tplink: short TCP frame")
	}
	n := binary.BigEndian.Uint32(data[0:4])
	if int(n) > len(data)-4 {
		return nil, fmt.Errorf("tplink: truncated TCP frame (%d > %d)", n, len(data)-4)
	}
	return data[4 : 4+n], nil
}

// SysInfo is the get_sysinfo response body, reproducing Table 5's fields.
type SysInfo struct {
	DeviceID   string  `json:"deviceId"`
	HWID       string  `json:"hwId"`
	OEMID      string  `json:"oemId"`
	Alias      string  `json:"alias"`
	DevName    string  `json:"dev_name"`
	Model      string  `json:"model"`
	SWVersion  string  `json:"sw_ver"`
	MAC        string  `json:"mac"`
	RelayState int     `json:"relay_state"`
	Latitude   float64 `json:"latitude"`
	Longitude  float64 `json:"longitude"`
}

type sysinfoEnvelope struct {
	System struct {
		GetSysinfo *SysInfo `json:"get_sysinfo"`
	} `json:"system"`
}

type relayEnvelope struct {
	System struct {
		SetRelayState *struct {
			State int `json:"state"`
		} `json:"set_relay_state"`
	} `json:"system"`
}

// QuerySysinfo is the canonical discovery probe body.
const QuerySysinfo = `{"system":{"get_sysinfo":{}}}`

// NewSetRelayState builds an unauthenticated on/off control command.
func NewSetRelayState(on bool) []byte {
	state := 0
	if on {
		state = 1
	}
	return []byte(fmt.Sprintf(`{"system":{"set_relay_state":{"state":%d}}}`, state))
}

// ParseSysinfoResponse extracts SysInfo from a plaintext response body.
func ParseSysinfoResponse(plain []byte) (*SysInfo, error) {
	var env sysinfoEnvelope
	if err := json.Unmarshal(plain, &env); err != nil {
		return nil, fmt.Errorf("tplink: bad sysinfo JSON: %w", err)
	}
	if env.System.GetSysinfo == nil {
		return nil, fmt.Errorf("tplink: no get_sysinfo in response")
	}
	return env.System.GetSysinfo, nil
}

// Device serves TPLINK-SHP for a simulated plug or bulb: UDP discovery
// responses and unauthenticated TCP control.
type Device struct {
	Host *stack.Host
	Info SysInfo
	// Relay mirrors Info.RelayState; control commands flip it.
	OnControl func(on bool)
}

// Start opens UDP and TCP port 9999.
func (d *Device) Start() {
	d.Host.OpenUDP(Port, d.onDatagram)
	d.Host.ListenTCP(Port, d.onAccept)
}

func (d *Device) sysinfoResponse() []byte {
	var env sysinfoEnvelope
	info := d.Info
	env.System.GetSysinfo = &info
	out, _ := json.Marshal(env)
	return out
}

func (d *Device) onDatagram(dg stack.Datagram) {
	plain := Deobfuscate(dg.Payload)
	if string(plain) != QuerySysinfo {
		return
	}
	// Discovery responses go back unicast, still "encrypted".
	d.Host.SendUDP(Port, dg.Src, dg.SrcPort, Obfuscate(d.sysinfoResponse()))
}

func (d *Device) onAccept(c *stack.TCPConn) {
	c.OnData = func(c *stack.TCPConn, data []byte) {
		body, err := UnframeTCP(data)
		if err != nil {
			return
		}
		plain := Deobfuscate(body)
		if string(plain) == QuerySysinfo {
			c.Send(FrameTCP(Obfuscate(d.sysinfoResponse())))
			return
		}
		var relay relayEnvelope
		if json.Unmarshal(plain, &relay) == nil && relay.System.SetRelayState != nil {
			d.Info.RelayState = relay.System.SetRelayState.State
			if d.OnControl != nil {
				d.OnControl(relay.System.SetRelayState.State == 1)
			}
			c.Send(FrameTCP(Obfuscate([]byte(`{"system":{"set_relay_state":{"err_code":0}}}`))))
		}
	}
}

// Discover broadcasts the sysinfo query and delivers parsed responses —
// what Alexa, Google Home and companion apps do (§5.1). The socket
// auto-closes after the response window so hourly discoverers don't leak
// ports over multi-day runs.
func Discover(h *stack.Host, fn func(info *SysInfo, from netip.Addr)) {
	sock := h.OpenUDPEphemeral(func(dg stack.Datagram) {
		info, err := ParseSysinfoResponse(Deobfuscate(dg.Payload))
		if err != nil {
			return
		}
		if fn != nil {
			fn(info, dg.Src)
		}
	})
	sock.SendTo(netx.Broadcast4, Port, Obfuscate([]byte(QuerySysinfo)))
	h.Sched.After(10*time.Second, sock.Close)
}

// Control dials the device and issues an unauthenticated relay command, the
// §5.1 "local attacker controls TP-Link devices" finding.
func Control(h *stack.Host, dst netip.Addr, on bool, done func(ok bool)) {
	conn := h.DialTCP(dst, Port)
	conn.OnConnect = func(c *stack.TCPConn) {
		c.Send(FrameTCP(Obfuscate(NewSetRelayState(on))))
	}
	conn.OnData = func(c *stack.TCPConn, data []byte) {
		if done != nil {
			done(true)
		}
		c.Close()
	}
	conn.OnRefused = func(*stack.TCPConn) {
		if done != nil {
			done(false)
		}
	}
}
