package tplink

import "testing"

// FuzzDecode asserts the TP-Link smart-plug codec is total: TCP length
// unframing, the XOR autokey deobfuscation, and the sysinfo JSON parser all
// run on untrusted LAN bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(FrameTCP(Obfuscate([]byte(`{"system":{"get_sysinfo":{}}}`))))
	f.Fuzz(func(t *testing.T, data []byte) {
		if inner, err := UnframeTCP(data); err == nil {
			plain := Deobfuscate(inner)
			if info, err := ParseSysinfoResponse(plain); err == nil {
				_ = info.Alias
				_ = info.MAC
			}
		}
		// UDP discovery replies arrive unframed.
		_, _ = ParseSysinfoResponse(Deobfuscate(data))
	})
}
