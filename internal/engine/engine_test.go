package engine

import (
	"testing"
)

func TestShardsCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 8}, {8, 8}, {5, 100}, {3860, 16},
	} {
		shards := Shards(tc.n, tc.workers)
		covered := 0
		prevEnd := 0
		for _, r := range shards {
			if r.Start != prevEnd {
				t.Fatalf("n=%d w=%d: gap at %d (shards %v)", tc.n, tc.workers, r.Start, shards)
			}
			if r.Len() <= 0 {
				t.Fatalf("n=%d w=%d: empty shard %v", tc.n, tc.workers, r)
			}
			covered += r.Len()
			prevEnd = r.End
		}
		if covered != tc.n {
			t.Fatalf("n=%d w=%d: covered %d", tc.n, tc.workers, covered)
		}
		if len(shards) > tc.workers && tc.workers > 0 {
			t.Fatalf("n=%d w=%d: %d shards", tc.n, tc.workers, len(shards))
		}
	}
}

func TestShardsBalanced(t *testing.T) {
	shards := Shards(10, 4)
	if len(shards) != 4 {
		t.Fatalf("shards: %v", shards)
	}
	for _, r := range shards {
		if r.Len() < 2 || r.Len() > 3 {
			t.Fatalf("unbalanced shard %v in %v", r, shards)
		}
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(1, 100, fn)
	for _, w := range []int{2, 3, 8, 64} {
		got := Map(w, 100, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d]=%d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("empty map: %v", out)
	}
}

func TestForEachShardWritesDisjoint(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	ForEachShard(n, 8, func(shard int, r Range) {
		for i := r.Start; i < r.End; i++ {
			out[i] = i + 1
		}
	})
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("index %d not written (got %d)", i, v)
		}
	}
}

func TestSubSeedDeterministicAndSpread(t *testing.T) {
	if SubSeed(1, 0) != SubSeed(1, 0) {
		t.Fatal("SubSeed not deterministic")
	}
	seen := map[int64]bool{}
	for s := uint64(0); s < 1000; s++ {
		seen[SubSeed(42, s)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("sub-seed collisions: %d unique of 1000", len(seen))
	}
	if SubSeed(1, 5) == SubSeed(2, 5) {
		t.Fatal("different base seeds collide")
	}
}

func TestWorkersFloor(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must be ≥1")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit worker count not respected")
	}
}
