package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestShardsCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 3}, {100, 8}, {8, 8}, {5, 100}, {3860, 16},
	} {
		shards := Shards(tc.n, tc.workers)
		covered := 0
		prevEnd := 0
		for _, r := range shards {
			if r.Start != prevEnd {
				t.Fatalf("n=%d w=%d: gap at %d (shards %v)", tc.n, tc.workers, r.Start, shards)
			}
			if r.Len() <= 0 {
				t.Fatalf("n=%d w=%d: empty shard %v", tc.n, tc.workers, r)
			}
			covered += r.Len()
			prevEnd = r.End
		}
		if covered != tc.n {
			t.Fatalf("n=%d w=%d: covered %d", tc.n, tc.workers, covered)
		}
		if len(shards) > tc.workers && tc.workers > 0 {
			t.Fatalf("n=%d w=%d: %d shards", tc.n, tc.workers, len(shards))
		}
	}
}

func TestShardOf(t *testing.T) {
	// Stable across calls, in range, and every bucket reachable at realistic
	// key populations (household IDs are "user%05d").
	for _, shards := range []int{1, 2, 3, 8, 64} {
		seen := make([]int, shards)
		for i := 0; i < 10000; i++ {
			key := fmt.Sprintf("user%05d", i)
			s := ShardOf(key, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", key, shards, s)
			}
			if again := ShardOf(key, shards); again != s {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", key, shards, s, again)
			}
			seen[s]++
		}
		for b, n := range seen {
			if n == 0 {
				t.Fatalf("shards=%d: bucket %d never hit", shards, b)
			}
		}
	}
	// Pinned values (FNV-1a 64): the checkpoint layout on disk depends on
	// this function, so a change to the hash silently orphans existing
	// per-shard snapshots. These anchors catch that.
	for _, tc := range []struct {
		key    string
		shards int
		want   int
	}{
		{"user00000", 8, 6},
		{"user00001", 8, 1},
		{"user03859", 8, 3},
		{"user00000", 2, 0},
		{"", 8, 5},
	} {
		if got := ShardOf(tc.key, tc.shards); got != tc.want {
			t.Fatalf("ShardOf(%q, %d) = %d, want %d", tc.key, tc.shards, got, tc.want)
		}
	}
	if got := ShardOf("anything", 1); got != 0 {
		t.Fatalf("ShardOf with 1 shard = %d, want 0", got)
	}
}

func TestShardsBalanced(t *testing.T) {
	shards := Shards(10, 4)
	if len(shards) != 4 {
		t.Fatalf("shards: %v", shards)
	}
	for _, r := range shards {
		if r.Len() < 2 || r.Len() > 3 {
			t.Fatalf("unbalanced shard %v in %v", r, shards)
		}
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(1, 100, fn)
	for _, w := range []int{2, 3, 8, 64} {
		got := Map(w, 100, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d]=%d want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("empty map: %v", out)
	}
}

func TestForEachShardWritesDisjoint(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	ForEachShard(n, 8, func(shard int, r Range) {
		for i := r.Start; i < r.End; i++ {
			out[i] = i + 1
		}
	})
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("index %d not written (got %d)", i, v)
		}
	}
}

func TestSubSeedDeterministicAndSpread(t *testing.T) {
	if SubSeed(1, 0) != SubSeed(1, 0) {
		t.Fatal("SubSeed not deterministic")
	}
	seen := map[int64]bool{}
	for s := uint64(0); s < 1000; s++ {
		seen[SubSeed(42, s)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("sub-seed collisions: %d unique of 1000", len(seen))
	}
	if SubSeed(1, 5) == SubSeed(2, 5) {
		t.Fatal("different base seeds collide")
	}
}

func TestWorkersFloor(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must be ≥1")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit worker count not respected")
	}
}

// countSpawns runs fn with the spawn hook installed and reports how many
// goroutines the engine started.
func countSpawns(t *testing.T, fn func()) int {
	t.Helper()
	var n atomic.Int64
	testHookSpawn = func() { n.Add(1) }
	defer func() { testHookSpawn = nil }()
	fn()
	return int(n.Load())
}

// With GOMAXPROCS=1 the engine must degrade every fan-out — even an explicit
// workers=4 request — to the inline sequential loop: zero goroutines, same
// output.
func TestSequentialFallbackSpawnsNothing(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	spawnsMap := countSpawns(t, func() {
		got := Map(4, 100, func(i int) int { return i * 3 })
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("inline Map wrong at %d: %d", i, v)
			}
		}
	})
	if spawnsMap != 0 {
		t.Fatalf("Map(4, …) at GOMAXPROCS=1 spawned %d goroutines, want 0", spawnsMap)
	}

	spawnsShard := countSpawns(t, func() {
		out := make([]int, 100)
		ForEachShard(100, 4, func(_ int, r Range) {
			for i := r.Start; i < r.End; i++ {
				out[i] = i + 1
			}
		})
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("inline ForEachShard missed index %d", i)
			}
		}
	})
	if spawnsShard != 0 {
		t.Fatalf("ForEachShard(…, 4) at GOMAXPROCS=1 spawned %d goroutines, want 0", spawnsShard)
	}
}

// Above one core the engine still parallelises: the hook must fire once per
// worker when parallelism allows it.
func TestFanOutSpawnsWhenParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	spawns := countSpawns(t, func() {
		_ = Map(4, 100, func(i int) int { return i })
	})
	if spawns != 4 {
		t.Fatalf("Map(4, 100) at GOMAXPROCS=4 spawned %d goroutines, want 4", spawns)
	}
}
