// Package engine provides the deterministic parallel primitives behind the
// analysis engine: bounded worker pools, contiguous sharding with
// per-shard/per-item sub-seeds, and ordered fan-out/fan-in helpers.
//
// Determinism contract: every helper merges results by index, never by
// completion order, and sub-seeds depend only on (seed, stream) — so any
// worker count, including 1, produces byte-identical output. Parallelism
// may change wall time, never content.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values < 1 mean "one per CPU".
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// parallelism caps a resolved worker count at the runtime's actual
// parallelism. Goroutines beyond GOMAXPROCS cannot run CPU-bound work
// concurrently, so spawning them only buys scheduler overhead — on a 1-core
// box every fan-out degrades to the inline sequential loop (and the
// determinism contract makes that invisible in output).
func parallelism(workers int) int {
	if p := runtime.GOMAXPROCS(0); workers > p {
		return p
	}
	return workers
}

// testHookSpawn, when non-nil, is called immediately before every goroutine
// the engine spawns. Tests use it to assert the inline fallback really
// spawns nothing.
var testHookSpawn func()

func spawned() {
	if testHookSpawn != nil {
		testHookSpawn()
	}
}

// Range is a half-open shard [Start, End) of a larger index space.
type Range struct {
	Start, End int
}

// Len reports the shard size.
func (r Range) Len() int { return r.End - r.Start }

// Shards splits n items into at most workers contiguous ranges whose sizes
// differ by at most one. Empty shards are omitted, so the result covers
// [0, n) exactly.
func Shards(n, workers int) []Range {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]Range, 0, workers)
	base, rem := n/workers, n%workers
	start := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{Start: start, End: start + size})
		start += size
	}
	return out
}

// ForEachShard runs fn once per shard, one goroutine each, and waits for
// all. Shards are contiguous, so fn can write disjoint slice ranges without
// synchronisation. When the effective parallelism is 1 — a single shard, or
// GOMAXPROCS == 1 — the shards run inline on the caller's goroutine in shard
// order, spawning nothing.
func ForEachShard(n, workers int, fn func(shard int, r Range)) {
	shards := Shards(n, workers)
	if len(shards) == 0 {
		return
	}
	if len(shards) == 1 || parallelism(len(shards)) <= 1 {
		for i, r := range shards {
			fn(i, r)
		}
		return
	}
	var wg sync.WaitGroup
	for i, r := range shards {
		wg.Add(1)
		spawned()
		go func(i int, r Range) {
			defer wg.Done()
			fn(i, r)
		}(i, r)
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index order. Unlike ForEachShard, tasks are pulled from a
// shared counter, so one slow task does not starve a whole shard — the
// right shape for heterogeneous work like the artifact set.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// An explicit worker count above the runtime's parallelism (workers=4 on
	// a 1-core box) buys nothing for CPU-bound tasks; degrade to the inline
	// loop rather than paying goroutine + work-stealing overhead.
	workers = parallelism(workers)
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		spawned()
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// ShardOf assigns a string key to one of shards buckets by FNV-1a 64-bit
// hash. The assignment depends only on (key, shards) — never on process
// state, insertion order, or map iteration — so two processes (or one
// process across a restart) always agree on where a key lives. This is the
// household→shard function the serving layer's partitioned fleet state and
// its checkpoint files share.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// SubSeed derives a deterministic per-shard (or per-item) seed from a base
// seed and a stream number, using the splitmix64 finaliser so that adjacent
// streams land far apart in the rand state space.
func SubSeed(seed int64, stream uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
