package ssdp

import "testing"

// FuzzDecode asserts the SSDP/HTTPU parser and the UPnP description-XML
// parser are total over arbitrary bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte("M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nST: ssdp:all\r\n\r\n"))
	f.Add([]byte("<root><device><friendlyName>x</friendlyName></device></root>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Parse(data); err == nil {
			_ = m.Location()
			_ = m.Header("SERVER")
			_ = m.Header("USN")
		}
		if d, err := ParseDevice(data); err == nil {
			_ = d.FriendlyName
			_ = len(d.Services)
		}
	})
}
