package ssdp

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestParseMSearch(t *testing.T) {
	m, err := Parse(MSearch(TargetRootDevice, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != "M-SEARCH" || m.ST() != TargetRootDevice {
		t.Fatalf("parsed: %+v", m)
	}
	if m.Header("man") != `"ssdp:discover"` {
		t.Fatalf("MAN header: %q", m.Header("man"))
	}
}

func TestParseNotifyAndResponse(t *testing.T) {
	ad := Advertisement{
		UUID:     "2f402f80-da50-11e1-9b23-001788685f61",
		Target:   TargetBasic,
		Location: "http://192.168.10.23:80/description.xml",
		Server:   "Linux/3.14 UPnP/1.0 IpBridge/1.56.0",
	}
	n, err := Parse(ad.Notify())
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != "NOTIFY" || n.ST() != TargetBasic {
		t.Fatalf("notify: %+v", n)
	}
	if !strings.Contains(n.USN(), ad.UUID) {
		t.Fatalf("USN lacks UUID: %q", n.USN())
	}
	r, err := Parse(ad.Response(TargetRootDevice))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "RESPONSE" || r.Location() != ad.Location {
		t.Fatalf("response: %+v", r)
	}
	if r.Header("SERVER") != ad.Server {
		t.Fatalf("SERVER: %q", r.Header("SERVER"))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "GET / HTTP/1.1\r\n\r\n", "random bytes"} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool { Parse(data); return true }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatches(t *testing.T) {
	ad := Advertisement{UUID: "abc", Target: TargetIGD}
	if !ad.Matches(TargetAll) || !ad.Matches(TargetRootDevice) || !ad.Matches(TargetIGD) {
		t.Fatal("standard targets should match")
	}
	if ad.Matches(TargetDial) {
		t.Fatal("unrelated target matched")
	}
	if !ad.Matches("uuid:abc") {
		t.Fatal("uuid target should match")
	}
}

func TestSearchResponderExchange(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	mk := func(last byte) *stack.Host {
		h := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
	tv := mk(30)
	r := &Responder{Host: tv, Ads: []Advertisement{{
		UUID:     "roku-uuid-1234",
		Target:   TargetDial,
		Location: "http://192.168.10.30:8060/dial/dd.xml",
		Server:   "Roku/9.0 UPnP/1.0",
	}}}
	r.Start()

	phone := mk(50)
	var got []*Message
	Search(phone, TargetAll, func(m *Message, from netip.Addr) { got = append(got, m) })
	sched.RunFor(time.Second)

	if len(got) != 1 {
		t.Fatalf("responses: %d", len(got))
	}
	if !strings.Contains(got[0].USN(), "roku-uuid-1234") {
		t.Fatalf("USN: %q", got[0].USN())
	}
	if got[0].ST() != TargetDial {
		t.Fatalf("answered ST: %q", got[0].ST())
	}
}

func TestPassiveResponderStaysSilent(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	tv := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 30}, stack.DefaultPolicy)
	tv.SetIPv4(netip.MustParseAddr("192.168.10.30"))
	searches := 0
	r := &Responder{Host: tv, Passive: true,
		Ads:      []Advertisement{{UUID: "x", Target: TargetBasic}},
		OnSearch: func(st string, from netip.Addr) { searches++ }}
	r.Start()
	phone := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 50}, stack.DefaultPolicy)
	phone.SetIPv4(netip.MustParseAddr("192.168.10.50"))
	n := 0
	Search(phone, TargetAll, func(m *Message, from netip.Addr) { n++ })
	sched.RunFor(time.Second)
	if searches != 1 {
		t.Fatalf("OnSearch fired %d times", searches)
	}
	if n != 0 {
		t.Fatalf("passive responder answered %d times", n)
	}
}

func TestDeviceDescriptionRoundTrip(t *testing.T) {
	d := &Device{
		FriendlyName: "AMC020SC43PJ749D66",
		Manufacturer: "Amcrest",
		ModelName:    "IP2M-841",
		SerialNumber: "9c:8e:cd:0a:33:1b",
		UDN:          "uuid:device_3_0-AMC020SC43PJ749D66",
		DeviceType:   TargetBasic,
		Services:     []DeviceService{{ServiceType: "urn:schemas-upnp-org:service:ConnectionManager:1", ControlURL: "/cm"}},
	}
	doc, err := d.Document()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), "9c:8e:cd:0a:33:1b") {
		t.Fatal("serial (MAC) missing from XML")
	}
	got, err := ParseDevice(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.FriendlyName != d.FriendlyName || got.UDN != d.UDN || got.SerialNumber != d.SerialNumber {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Services) != 1 || got.Services[0].ControlURL != "/cm" {
		t.Fatalf("services: %+v", got.Services)
	}
}
