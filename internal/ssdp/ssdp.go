// Package ssdp implements the Simple Service Discovery Protocol underpinning
// UPnP: M-SEARCH active discovery, NOTIFY passive presence broadcasting,
// unicast 200 OK responses, and the UPnP device-description XML that exposes
// friendly names, UUIDs and serial numbers (§5.1, Table 5).
package ssdp

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/stack"
)

// Port is the SSDP UDP port.
const Port = 1900

// Well-known search targets.
const (
	TargetAll         = "ssdp:all"
	TargetRootDevice  = "upnp:rootdevice"
	TargetIGD         = "urn:schemas-upnp-org:device:InternetGatewayDevice:1"
	TargetMediaRender = "urn:schemas-upnp-org:device:MediaRenderer:1"
	TargetDial        = "urn:dial-multiscreen-org:service:dial:1"
	TargetBasic       = "urn:schemas-upnp-org:device:Basic:1"
)

// Message is a parsed SSDP datagram.
type Message struct {
	// Kind is "M-SEARCH", "NOTIFY" or "RESPONSE".
	Kind    string
	Headers map[string]string
}

// Header returns a header value, case-insensitively.
func (m *Message) Header(k string) string { return m.Headers[strings.ToUpper(k)] }

// ST returns the search target (M-SEARCH/response) or NT (NOTIFY).
func (m *Message) ST() string {
	if st := m.Header("ST"); st != "" {
		return st
	}
	return m.Header("NT")
}

// USN returns the unique service name (the UUID exposure channel).
func (m *Message) USN() string { return m.Header("USN") }

// Location returns the device-description URL.
func (m *Message) Location() string { return m.Header("LOCATION") }

// Parse decodes an SSDP datagram.
func Parse(data []byte) (*Message, error) {
	rd := bufio.NewReader(strings.NewReader(string(data)))
	first, err := rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("ssdp: no start line: %w", err)
	}
	first = strings.TrimSpace(first)
	m := &Message{Headers: make(map[string]string)}
	switch {
	case strings.HasPrefix(first, "M-SEARCH"):
		m.Kind = "M-SEARCH"
	case strings.HasPrefix(first, "NOTIFY"):
		m.Kind = "NOTIFY"
	case strings.HasPrefix(first, "HTTP/1.1 200"):
		m.Kind = "RESPONSE"
	default:
		return nil, fmt.Errorf("ssdp: unrecognised start line %q", first)
	}
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		m.Headers[strings.ToUpper(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return m, nil
}

func formatHeaders(h map[string]string) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, h[k])
	}
	sb.WriteString("\r\n")
	return sb.String()
}

// MSearch builds an M-SEARCH datagram for the given target.
func MSearch(target string, mx int) []byte {
	return []byte("M-SEARCH * HTTP/1.1\r\n" + formatHeaders(map[string]string{
		"HOST": "239.255.255.250:1900",
		"MAN":  `"ssdp:discover"`,
		"MX":   fmt.Sprint(mx),
		"ST":   target,
	}))
}

// Advertisement describes an advertised UPnP root device.
type Advertisement struct {
	// UUID is the device UDN, typically stable and unique (Table 2).
	UUID string
	// Target is the device/service type advertised.
	Target string
	// Location is the description URL, e.g. "http://192.168.10.9:49152/desc.xml".
	Location string
	// Server is the SERVER header exposing OS and UPnP stack versions,
	// e.g. "Linux/3.14 UPnP/1.0 IpBridge/1.56.0".
	Server string
}

// Notify builds a NOTIFY ssdp:alive datagram.
func (a Advertisement) Notify() []byte {
	return []byte("NOTIFY * HTTP/1.1\r\n" + formatHeaders(map[string]string{
		"HOST":          "239.255.255.250:1900",
		"CACHE-CONTROL": "max-age=1800",
		"LOCATION":      a.Location,
		"NT":            a.Target,
		"NTS":           "ssdp:alive",
		"SERVER":        a.Server,
		"USN":           "uuid:" + a.UUID + "::" + a.Target,
	}))
}

// Response builds a unicast 200 OK answer to an M-SEARCH.
func (a Advertisement) Response(st string) []byte {
	return []byte("HTTP/1.1 200 OK\r\n" + formatHeaders(map[string]string{
		"CACHE-CONTROL": "max-age=1800",
		"EXT":           "",
		"LOCATION":      a.Location,
		"SERVER":        a.Server,
		"ST":            st,
		"USN":           "uuid:" + a.UUID + "::" + st,
	}))
}

// Matches reports whether the advertisement should answer a search target.
func (a Advertisement) Matches(st string) bool {
	switch st {
	case TargetAll:
		return true
	case TargetRootDevice:
		return true
	}
	return strings.EqualFold(st, a.Target) || strings.EqualFold(st, "uuid:"+a.UUID)
}

// Responder answers M-SEARCH queries and periodically NOTIFYs.
type Responder struct {
	Host *stack.Host
	Ads  []Advertisement
	// Passive disables M-SEARCH responses (devices that only NOTIFY; only
	// 9 of 30 SSDP devices in the lab answer searches, §5.1).
	Passive bool
	// OnSearch observes inbound searches (honeypot/analysis hook).
	OnSearch func(st string, from netip.Addr)
}

// Start joins the SSDP group and begins answering.
func (r *Responder) Start() {
	r.Host.JoinGroup(netx.SSDPGroup)
	r.Host.OpenUDP(Port, r.onDatagram)
}

func (r *Responder) onDatagram(dg stack.Datagram) {
	m, err := Parse(dg.Payload)
	if err != nil || m.Kind != "M-SEARCH" {
		return
	}
	st := m.ST()
	if r.OnSearch != nil {
		r.OnSearch(st, dg.Src)
	}
	if r.Passive {
		return
	}
	for _, ad := range r.Ads {
		if ad.Matches(st) {
			answered := st
			if st == TargetAll {
				answered = ad.Target
			}
			r.Host.SendUDP(Port, dg.Src, dg.SrcPort, ad.Response(answered))
		}
	}
}

// NotifyAll multicasts a NOTIFY for every advertisement.
func (r *Responder) NotifyAll() {
	for _, ad := range r.Ads {
		r.Host.SendUDP(Port, netx.SSDPGroup, Port, ad.Notify())
	}
}

// Search multicasts an M-SEARCH from an ephemeral port and delivers parsed
// responses to fn. The socket auto-closes after the response window so that
// periodic searchers (Google: every 20 s, §5.1) do not exhaust ports over
// multi-day runs.
func Search(h *stack.Host, target string, fn func(m *Message, from netip.Addr)) {
	sock := h.OpenUDPEphemeral(func(dg stack.Datagram) {
		m, err := Parse(dg.Payload)
		if err != nil || m.Kind != "RESPONSE" {
			return
		}
		if fn != nil {
			fn(m, dg.Src)
		}
	})
	sock.SendTo(netx.SSDPGroup, Port, MSearch(target, 2))
	h.Sched.After(10*time.Second, sock.Close)
}

// Device is the UPnP device-description XML document (Table 5's SSDP
// example). Field names follow the UPnP Device Architecture spec.
type Device struct {
	XMLName      xml.Name        `xml:"root"`
	FriendlyName string          `xml:"device>friendlyName"`
	Manufacturer string          `xml:"device>manufacturer"`
	ModelName    string          `xml:"device>modelName"`
	SerialNumber string          `xml:"device>serialNumber"`
	UDN          string          `xml:"device>UDN"`
	DeviceType   string          `xml:"device>deviceType"`
	Services     []DeviceService `xml:"device>serviceList>service"`
}

// DeviceService is one service entry in a description document.
type DeviceService struct {
	ServiceType string `xml:"serviceType"`
	ControlURL  string `xml:"controlURL"`
}

// MarshalXML renders the description document.
func (d *Device) Document() ([]byte, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// ParseDevice decodes a description document.
func ParseDevice(data []byte) (*Device, error) {
	var d Device
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("ssdp: bad device description: %w", err)
	}
	return &d, nil
}
