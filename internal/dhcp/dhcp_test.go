package dhcp

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestMessageRoundTrip(t *testing.T) {
	hw := netx.MAC{0x50, 0xc7, 0xbf, 1, 2, 3}
	m := NewDiscover(hw, 0xdeadbeef, "HS110(US)-BC1F18", "dhcpcd-6.8.2:Linux-3.10", []uint8{1, 3, 6, 15, 17, 69})
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 0xdeadbeef || got.ClientHW != hw {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Type() != Discover {
		t.Fatalf("type = %d", got.Type())
	}
	if got.Hostname() != "HS110(US)-BC1F18" {
		t.Fatalf("hostname %q", got.Hostname())
	}
	if got.VendorClass() != "dhcpcd-6.8.2:Linux-3.10" {
		t.Fatalf("vendor class %q", got.VendorClass())
	}
	if len(got.ParamRequest()) != 6 || got.ParamRequest()[4] != OptRootPath {
		t.Fatalf("params %v", got.ParamRequest())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("short")); err == nil {
		t.Fatal("short message accepted")
	}
	bad := make([]byte, 240)
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("missing magic cookie accepted")
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		Unmarshal(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplyCarriesNetworkConfig(t *testing.T) {
	router := netip.MustParseAddr("192.168.10.1")
	m := NewReply(Ack, netx.MAC{1, 2, 3, 4, 5, 6}, 7, netip.MustParseAddr("192.168.10.100"), router, router, router)
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type() != Ack || got.YourIP != netip.MustParseAddr("192.168.10.100") {
		t.Fatalf("reply: %+v", got)
	}
	if len(got.Opt(OptSubnetMask)) != 4 || len(got.Opt(OptRouter)) != 4 || len(got.Opt(OptDNS)) != 4 {
		t.Fatal("network options missing")
	}
}

func TestFullExchangeOverLAN(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)

	routerHost := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 1}, stack.DefaultPolicy)
	routerHost.SetIPv4(netip.MustParseAddr("192.168.10.1"))
	srv := NewServer(routerHost)

	devHost := stack.NewHost(network, netx.MAC{0x50, 0xc7, 0xbf, 0, 0, 9}, stack.DefaultPolicy)
	cl := &Client{Host: devHost, Hostname: "Wiz-Bulb", VendorClass: "udhcp 1.19.4", Params: []uint8{1, 3, 6}}

	var acked netip.Addr
	cl.Start(func(ip netip.Addr) { acked = ip })
	sched.RunFor(5 * time.Second)

	if !acked.IsValid() {
		t.Fatal("no ACK received")
	}
	if devHost.IPv4() != acked {
		t.Fatalf("host IP %v != acked %v", devHost.IPv4(), acked)
	}
	lease := srv.Leases[devHost.MAC()]
	if lease == nil {
		t.Fatal("no lease recorded")
	}
	if lease.Hostname != "Wiz-Bulb" || lease.VendorClass != "udhcp 1.19.4" {
		t.Fatalf("lease identity: %+v", lease)
	}
}

func TestReservedAddresses(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	routerHost := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 1}, stack.DefaultPolicy)
	routerHost.SetIPv4(netip.MustParseAddr("192.168.10.1"))
	srv := NewServer(routerHost)

	hw := netx.MAC{0x10, 0xd5, 0x61, 0, 0, 7}
	want := netip.MustParseAddr("192.168.10.42")
	srv.Reserved[hw] = want

	devHost := stack.NewHost(network, hw, stack.DefaultPolicy)
	cl := &Client{Host: devHost}
	var acked netip.Addr
	cl.Start(func(ip netip.Addr) { acked = ip })
	sched.RunFor(5 * time.Second)
	if acked != want {
		t.Fatalf("reserved address not honoured: got %v", acked)
	}
}

func TestTwoClientsGetDistinctAddresses(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	routerHost := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 1}, stack.DefaultPolicy)
	routerHost.SetIPv4(netip.MustParseAddr("192.168.10.1"))
	NewServer(routerHost)

	var ips []netip.Addr
	for i := byte(0); i < 2; i++ {
		h := stack.NewHost(network, netx.MAC{4, 0, 0, 0, 0, i}, stack.DefaultPolicy)
		(&Client{Host: h}).Start(func(ip netip.Addr) { ips = append(ips, ip) })
	}
	sched.RunFor(5 * time.Second)
	if len(ips) != 2 || ips[0] == ips[1] {
		t.Fatalf("addresses: %v", ips)
	}
}
