package dhcp

import (
	"net/netip"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

// Lease is one address assignment, retained for the exposure analysis
// (hostname and client-version leakage, §5.1).
type Lease struct {
	HW          netx.MAC
	IP          netip.Addr
	Hostname    string
	VendorClass string
	ParamCodes  []uint8
}

// Server is the router-side DHCP server for a /24.
type Server struct {
	Host   *stack.Host
	Router netip.Addr

	next   uint8 // next host byte to hand out
	Leases map[netx.MAC]*Lease
	// Reserved pins specific MACs to addresses (the testbed assigns devices
	// stable IPs so multi-day captures stay comparable).
	Reserved map[netx.MAC]netip.Addr

	cDiscover, cRequest, cLeases, cReleases *obs.Counter
}

// NewServer starts a DHCP server on the router host (UDP 67).
func NewServer(h *stack.Host) *Server {
	reg := h.Sched.Telemetry.Registry
	s := &Server{
		Host:      h,
		Router:    h.IPv4(),
		next:      100,
		Leases:    make(map[netx.MAC]*Lease),
		Reserved:  make(map[netx.MAC]netip.Addr),
		cDiscover: reg.Counter("dhcp_messages", "type", "discover"),
		cRequest:  reg.Counter("dhcp_messages", "type", "request"),
		cLeases:   reg.Counter("dhcp_leases"),
		cReleases: reg.Counter("dhcp_messages", "type", "release"),
	}
	h.OpenUDP(67, s.onDatagram)
	return s
}

// Release drops the lease for hw — the administrative path for retiring a
// device whose client will never send a DHCPRELEASE on its own (it is
// powered off for good). Reports whether a lease existed. Any address
// reservation stays, so a device re-added later keeps its stable IP.
func (s *Server) Release(hw netx.MAC) bool {
	if _, ok := s.Leases[hw]; !ok {
		return false
	}
	delete(s.Leases, hw)
	s.cReleases.Inc()
	if s.Host.Sched.Tracing() {
		s.Host.Sched.TraceEvent("dhcp", "release", "mac", hw.String())
	}
	return true
}

func (s *Server) addrFor(hw netx.MAC) netip.Addr {
	if ip, ok := s.Reserved[hw]; ok {
		return ip
	}
	if l, ok := s.Leases[hw]; ok {
		return l.IP
	}
	base := s.Router.As4()
	base[3] = s.next
	s.next++
	return netip.AddrFrom4(base)
}

func (s *Server) onDatagram(dg stack.Datagram) {
	m, err := Unmarshal(dg.Payload)
	if err != nil || m.Op != OpRequest {
		return
	}
	ip := s.addrFor(m.ClientHW)
	var reply *Message
	switch m.Type() {
	case Discover:
		s.cDiscover.Inc()
		reply = NewReply(Offer, m.ClientHW, m.XID, ip, s.Router, s.Router, s.Router)
	case Request:
		s.cRequest.Inc()
		reply = NewReply(Ack, m.ClientHW, m.XID, ip, s.Router, s.Router, s.Router)
		if _, renewal := s.Leases[m.ClientHW]; !renewal {
			s.cLeases.Inc()
		}
		s.Leases[m.ClientHW] = &Lease{
			HW: m.ClientHW, IP: ip,
			Hostname:    m.Hostname(),
			VendorClass: m.VendorClass(),
			ParamCodes:  append([]uint8(nil), m.ParamRequest()...),
		}
		if s.Host.Sched.Tracing() {
			s.Host.Sched.TraceEvent("dhcp", "lease",
				"mac", m.ClientHW.String(), "ip", ip.String(), "hostname", m.Hostname())
		}
	default:
		return
	}
	// Replies go to broadcast: the client has no address yet.
	s.Host.SendUDP(67, netx.Broadcast4, 68, reply.Marshal())
}

// Client runs the four-way DHCP exchange for a device and invokes done with
// the acked address.
type Client struct {
	Host        *stack.Host
	Hostname    string
	VendorClass string
	// Params is the option-55 parameter request list; devices in the lab
	// request up to 30 data types including deprecated ones (§5.1).
	Params []uint8

	// Router is the gateway learned from the ACK's option 3.
	Router netip.Addr

	xid   uint32
	done  func(ip netip.Addr)
	acked bool
	retry *sim.Timer
}

// maxAttempts bounds DISCOVER retransmissions per exchange; real clients
// back off roughly exponentially and give up (or restart) after a handful.
const maxAttempts = 6

// Start begins the DISCOVER/OFFER/REQUEST/ACK exchange. The DISCOVER is
// retransmitted with backoff until an ACK arrives, so leases complete even
// on a lossy network (the chaos layer drops broadcast frames too).
func (c *Client) Start(done func(ip netip.Addr)) {
	c.done = done
	c.Host.OpenUDP(68, c.onDatagram)
	c.begin()
}

// Restart re-runs the lease exchange with a fresh transaction ID — a device
// rebooting. The done callback from Start is NOT re-invoked (services are
// already scheduled); the exchange just re-acquires the address.
func (c *Client) Restart() {
	c.done = nil
	c.begin()
}

// begin starts one exchange: fresh xid, first DISCOVER, retry timer chain.
func (c *Client) begin() {
	if c.retry != nil {
		c.retry.Stop()
		c.retry = nil
	}
	c.acked = false
	c.xid = c.Host.Sched.Rand().Uint32()
	c.sendDiscover(1)
}

func (c *Client) sendDiscover(attempt int) {
	if c.acked || attempt > maxAttempts {
		return
	}
	d := NewDiscover(c.Host.MAC(), c.xid, c.Hostname, c.VendorClass, c.Params)
	c.Host.SendUDP(68, netx.Broadcast4, 67, d.Marshal())
	// Backoff: 4s, 8s, 16s, ... like RFC 2131's suggested schedule.
	wait := time.Duration(4<<uint(attempt-1)) * time.Second
	c.retry = c.Host.Sched.AfterTagged("dhcp", wait, func() { c.sendDiscover(attempt + 1) })
}

func (c *Client) onDatagram(dg stack.Datagram) {
	m, err := Unmarshal(dg.Payload)
	if err != nil || m.Op != OpReply || m.XID != c.xid || m.ClientHW != c.Host.MAC() {
		return
	}
	switch m.Type() {
	case Offer:
		if c.acked {
			return // duplicate OFFER after completion (chaos duplication)
		}
		req := NewRequest(c.Host.MAC(), c.xid, m.YourIP, c.Hostname, c.VendorClass, c.Params)
		c.Host.SendUDP(68, netx.Broadcast4, 67, req.Marshal())
	case Ack:
		if c.acked {
			return
		}
		c.acked = true
		if c.retry != nil {
			c.retry.Stop()
			c.retry = nil
		}
		c.Host.SetIPv4(m.YourIP)
		if r := m.Opt(OptRouter); len(r) == 4 {
			c.Router = netip.AddrFrom4([4]byte(r))
		}
		if c.done != nil {
			c.done(m.YourIP)
		}
	}
}
