package dhcp

import (
	"testing"

	"iotlan/internal/netx"
)

// FuzzDecode asserts the DHCP codec is total: option walking must terminate
// and accessors must be safe on any parsed message.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(NewDiscover(netx.MAC{2, 0, 0, 0, 0, 1}, 7, "fuzz-host", "vendor", []uint8{1, 3, 6}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		_ = m.Type()
		_ = m.Hostname()
		_ = m.VendorClass()
		_ = m.ParamRequest()
		_ = m.Marshal()
	})
}
