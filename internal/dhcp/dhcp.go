// Package dhcp implements the DHCPv4 wire format (RFC 2131) plus a server
// and client over the simulated stack. DHCP matters to the study twice: it
// assigns lab addresses, and its options leak device identity — hostnames,
// vendor class identifiers and parameter-request fingerprints (§5.1).
package dhcp

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"iotlan/internal/netx"
)

// Message op codes.
const (
	OpRequest = 1
	OpReply   = 2
)

// DHCP message types (option 53).
const (
	Discover = 1
	Offer    = 2
	Request  = 3
	Ack      = 5
	Nak      = 6
)

// Well-known option codes used by devices in the study.
const (
	OptSubnetMask   = 1
	OptRouter       = 3
	OptNameServer   = 5 // deprecated IEN-116 name server (§5.1 oddity)
	OptDNS          = 6
	OptHostname     = 12
	OptRootPath     = 17 // deprecated, still requested by some devices
	OptDomainName   = 15
	OptBroadcast    = 28
	OptNTP          = 42
	OptRequestedIP  = 50
	OptLeaseTime    = 51
	OptMsgType      = 53
	OptServerID     = 54
	OptParamRequest = 55
	OptVendorClass  = 60
	OptClientID     = 61
	OptSMTPServer   = 69 // deprecated, observed in lab requests
	OptClientFQDN   = 81
	OptEnd          = 255
)

// Message is a DHCPv4 message.
type Message struct {
	Op       uint8
	XID      uint32
	ClientHW netx.MAC
	YourIP   netip.Addr
	Options  []Option
}

// Option is a raw DHCP option.
type Option struct {
	Code uint8
	Data []byte
}

// Opt returns the first option with the given code, or nil.
func (m *Message) Opt(code uint8) []byte {
	for _, o := range m.Options {
		if o.Code == code {
			return o.Data
		}
	}
	return nil
}

// Type returns the message type (option 53), or 0.
func (m *Message) Type() uint8 {
	if d := m.Opt(OptMsgType); len(d) == 1 {
		return d[0]
	}
	return 0
}

// Hostname returns option 12 as a string, or "".
func (m *Message) Hostname() string { return string(m.Opt(OptHostname)) }

// VendorClass returns option 60 as a string (the DHCP client version
// identifier the paper fingerprints), or "".
func (m *Message) VendorClass() string { return string(m.Opt(OptVendorClass)) }

// ParamRequest returns the option-55 parameter request list.
func (m *Message) ParamRequest() []uint8 { return m.Opt(OptParamRequest) }

var magicCookie = [4]byte{99, 130, 83, 99}

// Marshal encodes the message.
func (m *Message) Marshal() []byte {
	out := make([]byte, 240, 300)
	out[0] = m.Op
	out[1] = 1 // htype ethernet
	out[2] = 6 // hlen
	binary.BigEndian.PutUint32(out[4:8], m.XID)
	if m.YourIP.IsValid() && m.YourIP.Is4() {
		y := m.YourIP.As4()
		copy(out[16:20], y[:])
	}
	copy(out[28:34], m.ClientHW[:])
	copy(out[236:240], magicCookie[:])
	for _, o := range m.Options {
		out = append(out, o.Code, uint8(len(o.Data)))
		out = append(out, o.Data...)
	}
	out = append(out, OptEnd)
	return out
}

// Unmarshal decodes a message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 240 {
		return nil, fmt.Errorf("dhcp: message too short (%d bytes)", len(data))
	}
	if [4]byte(data[236:240]) != magicCookie {
		return nil, fmt.Errorf("dhcp: bad magic cookie")
	}
	m := &Message{
		Op:  data[0],
		XID: binary.BigEndian.Uint32(data[4:8]),
	}
	copy(m.ClientHW[:], data[28:34])
	if yi := [4]byte(data[16:20]); yi != [4]byte{} {
		m.YourIP = netip.AddrFrom4(yi)
	}
	opts := data[240:]
	for len(opts) > 0 {
		code := opts[0]
		if code == OptEnd {
			break
		}
		if code == 0 { // pad
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return nil, fmt.Errorf("dhcp: truncated option %d", code)
		}
		n := int(opts[1])
		if len(opts) < 2+n {
			return nil, fmt.Errorf("dhcp: truncated option %d body", code)
		}
		m.Options = append(m.Options, Option{Code: code, Data: append([]byte(nil), opts[2:2+n]...)})
		opts = opts[2+n:]
	}
	return m, nil
}

// NewDiscover builds a DISCOVER with the identity options a device profile
// chooses to expose.
func NewDiscover(hw netx.MAC, xid uint32, hostname, vendorClass string, params []uint8) *Message {
	m := &Message{Op: OpRequest, XID: xid, ClientHW: hw}
	m.Options = append(m.Options, Option{OptMsgType, []byte{Discover}})
	if hostname != "" {
		m.Options = append(m.Options, Option{OptHostname, []byte(hostname)})
	}
	if vendorClass != "" {
		m.Options = append(m.Options, Option{OptVendorClass, []byte(vendorClass)})
	}
	if len(params) > 0 {
		m.Options = append(m.Options, Option{OptParamRequest, params})
	}
	return m
}

// NewRequest builds a REQUEST for the offered address.
func NewRequest(hw netx.MAC, xid uint32, offered netip.Addr, hostname, vendorClass string, params []uint8) *Message {
	m := NewDiscover(hw, xid, hostname, vendorClass, params)
	m.Options[0].Data[0] = Request
	ip := offered.As4()
	m.Options = append(m.Options, Option{OptRequestedIP, ip[:]})
	return m
}

// NewReply builds an OFFER or ACK from the server.
func NewReply(msgType uint8, hw netx.MAC, xid uint32, yours, server, router, dns netip.Addr) *Message {
	m := &Message{Op: OpReply, XID: xid, ClientHW: hw, YourIP: yours}
	m.Options = append(m.Options, Option{OptMsgType, []byte{msgType}})
	sid := server.As4()
	m.Options = append(m.Options, Option{OptServerID, sid[:]})
	m.Options = append(m.Options, Option{OptSubnetMask, []byte{255, 255, 255, 0}})
	r := router.As4()
	m.Options = append(m.Options, Option{OptRouter, r[:]})
	d := dns.As4()
	m.Options = append(m.Options, Option{OptDNS, d[:]})
	lease := make([]byte, 4)
	binary.BigEndian.PutUint32(lease, 86400)
	m.Options = append(m.Options, Option{OptLeaseTime, lease})
	return m
}
