// Package httpx implements a minimal HTTP/1.1 server and client over the
// simulated TCP stack. Plaintext HTTP is one of the study's main exposure
// channels: device description XML, SOAP control endpoints, camera snapshot
// services, and Server/User-Agent headers leaking OS and firmware versions
// (§5.2).
//
// httpx is the callback-idiom server for simulated device firmware —
// hundreds of tiny endpoints that live entirely on the event loop. New code
// that wants real stdlib HTTP semantics (net/http handlers, streaming
// bodies, middleware) should instead serve an ordinary http.Server over a
// vnet.Listener; see internal/vnet and DESIGN.md "Virtual net" for the
// split.
package httpx

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"iotlan/internal/stack"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Headers map[string]string
	Body    []byte
	// From is the client address (filled by the server).
	From netip.Addr
}

// Header returns a request header, case-insensitively.
func (r *Request) Header(k string) string { return r.Headers[strings.ToLower(k)] }

// Response is an HTTP response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// Header returns a response header, case-insensitively.
func (r *Response) Header(k string) string { return r.Headers[strings.ToLower(k)] }

func reasonFor(code int) string {
	switch code {
	case 200:
		return "OK"
	case 401:
		return "Unauthorized"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	}
	return "Unknown"
}

// MarshalRequest renders a request on the wire.
func MarshalRequest(r *Request) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	writeHeaders(&sb, r.Headers, len(r.Body))
	sb.Write(r.Body)
	return []byte(sb.String())
}

// MarshalResponse renders a response on the wire.
func MarshalResponse(r *Response) []byte {
	reason := r.Reason
	if reason == "" {
		reason = reasonFor(r.Status)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", r.Status, reason)
	writeHeaders(&sb, r.Headers, len(r.Body))
	sb.Write(r.Body)
	return []byte(sb.String())
}

func writeHeaders(sb *strings.Builder, h map[string]string, bodyLen int) {
	keys := make([]string, 0, len(h))
	hasCL := false
	for k := range h {
		keys = append(keys, k)
		if strings.EqualFold(k, "Content-Length") {
			hasCL = true
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s: %s\r\n", k, h[k])
	}
	if !hasCL && bodyLen > 0 {
		fmt.Fprintf(sb, "Content-Length: %d\r\n", bodyLen)
	}
	sb.WriteString("\r\n")
}

// ParseRequest decodes a request from wire bytes.
func ParseRequest(data []byte) (*Request, error) {
	head, body, err := splitMessage(data)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("httpx: bad request line %q", lines[0])
	}
	return &Request{
		Method:  parts[0],
		Path:    parts[1],
		Headers: parseHeaders(lines[1:]),
		Body:    body,
	}, nil
}

// ParseResponse decodes a response from wire bytes.
func ParseResponse(data []byte) (*Response, error) {
	head, body, err := splitMessage(data)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("httpx: bad status line %q", lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("httpx: bad status code %q", parts[1])
	}
	resp := &Response{Status: code, Headers: parseHeaders(lines[1:]), Body: body}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	return resp, nil
}

func splitMessage(data []byte) (string, []byte, error) {
	s := string(data)
	idx := strings.Index(s, "\r\n\r\n")
	if idx < 0 {
		return "", nil, fmt.Errorf("httpx: no header terminator")
	}
	return s[:idx], data[idx+4:], nil
}

func parseHeaders(lines []string) map[string]string {
	h := make(map[string]string, len(lines))
	for _, l := range lines {
		k, v, ok := strings.Cut(l, ":")
		if !ok {
			continue
		}
		h[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return h
}

// Handler serves one request.
type Handler func(req *Request) *Response

// Server is an HTTP server bound to one TCP port of a host.
type Server struct {
	Host *stack.Host
	Port uint16
	// ServerHeader is emitted on every response (the banner Nessus grabs).
	ServerHeader string

	mux map[string]Handler
	// NotFound handles unmatched paths (default: plain 404).
	NotFound Handler
	// OnRequest observes every request (honeypot/analysis hook).
	OnRequest func(req *Request)
}

// NewServer creates and starts an HTTP server on port.
func NewServer(h *stack.Host, port uint16, serverHeader string) *Server {
	s := &Server{Host: h, Port: port, ServerHeader: serverHeader, mux: make(map[string]Handler)}
	h.ListenTCP(port, s.onAccept)
	return s
}

// Handle registers a handler for an exact path.
func (s *Server) Handle(path string, fn Handler) { s.mux[path] = fn }

func (s *Server) onAccept(c *stack.TCPConn) {
	c.OnData = func(c *stack.TCPConn, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			c.Send(MarshalResponse(&Response{Status: 500, Headers: s.baseHeaders()}))
			return
		}
		remote, _ := c.Remote()
		req.From = remote
		if s.OnRequest != nil {
			s.OnRequest(req)
		}
		h, ok := s.mux[req.Path]
		if !ok {
			if s.NotFound != nil {
				h = s.NotFound
			} else {
				h = func(*Request) *Response {
					return &Response{Status: 404, Body: []byte("not found")}
				}
			}
		}
		resp := h(req)
		if resp == nil {
			resp = &Response{Status: 500}
		}
		if resp.Headers == nil {
			resp.Headers = map[string]string{}
		}
		for k, v := range s.baseHeaders() {
			if _, exists := resp.Headers[k]; !exists {
				resp.Headers[k] = v
			}
		}
		c.Send(MarshalResponse(resp))
	}
}

func (s *Server) baseHeaders() map[string]string {
	h := map[string]string{}
	if s.ServerHeader != "" {
		h["Server"] = s.ServerHeader
	}
	return h
}

// Get issues a GET and invokes done with the parsed response (nil on
// connection refusal).
func Get(h *stack.Host, dst netip.Addr, port uint16, path string, headers map[string]string, done func(*Response)) {
	req := &Request{Method: "GET", Path: path, Headers: headers}
	do(h, dst, port, req, done)
}

// Post issues a POST (SOAP control, upload endpoints).
func Post(h *stack.Host, dst netip.Addr, port uint16, path string, headers map[string]string, body []byte, done func(*Response)) {
	req := &Request{Method: "POST", Path: path, Headers: headers, Body: body}
	do(h, dst, port, req, done)
}

func do(h *stack.Host, dst netip.Addr, port uint16, req *Request, done func(*Response)) {
	conn := h.DialTCP(dst, port)
	conn.OnConnect = func(c *stack.TCPConn) { c.Send(MarshalRequest(req)) }
	conn.OnData = func(c *stack.TCPConn, data []byte) {
		resp, err := ParseResponse(data)
		if err == nil && done != nil {
			done(resp)
		}
		c.Close()
	}
	conn.OnRefused = func(*stack.TCPConn) {
		if done != nil {
			done(nil)
		}
	}
}
