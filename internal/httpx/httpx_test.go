package httpx

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestRequestRoundTrip(t *testing.T) {
	r := &Request{
		Method:  "GET",
		Path:    "/description.xml",
		Headers: map[string]string{"User-Agent": "Chromecast/1.56 CrKey/1.56.500000"},
	}
	got, err := ParseRequest(MarshalRequest(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Path != "/description.xml" {
		t.Fatalf("request: %+v", got)
	}
	if got.Header("user-agent") != "Chromecast/1.56 CrKey/1.56.500000" {
		t.Fatalf("UA: %q", got.Header("user-agent"))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{
		Status:  200,
		Headers: map[string]string{"Server": "Linux/3.14 UPnP/1.0 IpBridge/1.56.0"},
		Body:    []byte("<root/>"),
	}
	got, err := ParseResponse(MarshalResponse(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 200 || string(got.Body) != "<root/>" {
		t.Fatalf("response: %+v", got)
	}
	if got.Header("SERVER") != "Linux/3.14 UPnP/1.0 IpBridge/1.56.0" {
		t.Fatalf("Server: %q", got.Header("SERVER"))
	}
	if got.Header("content-length") != "7" {
		t.Fatalf("Content-Length: %q", got.Header("content-length"))
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{"", "GARBAGE", "GET /\r\n\r\n", "HTTP/1.1 abc OK\r\n\r\n"} {
		if _, err := ParseRequest([]byte(bad)); err == nil && !strings.HasPrefix(bad, "GET") {
			t.Errorf("ParseRequest(%q) accepted", bad)
		}
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 abc OK\r\n\r\n")); err == nil {
		t.Fatal("bad status code accepted")
	}
	if _, err := ParseResponse([]byte("nonsense\r\n\r\n")); err == nil {
		t.Fatal("bad status line accepted")
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		ParseRequest(data)
		ParseResponse(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func setup() (*sim.Scheduler, *lan.Network, func(byte) *stack.Host) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	return s, n, func(last byte) *stack.Host {
		h := stack.NewHost(n, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
}

func TestServerRoutesAndBanners(t *testing.T) {
	sched, _, mk := setup()
	hue := mk(23)
	srv := NewServer(hue, 80, "Linux/3.14 UPnP/1.0 IpBridge/1.56.0")
	srv.Handle("/description.xml", func(req *Request) *Response {
		return &Response{Status: 200, Body: []byte("<friendlyName>Hue</friendlyName>")}
	})

	phone := mk(50)
	var got *Response
	Get(phone, hue.IPv4(), 80, "/description.xml", nil, func(r *Response) { got = r })
	sched.RunFor(time.Second)

	if got == nil || got.Status != 200 {
		t.Fatalf("response: %+v", got)
	}
	if !strings.Contains(string(got.Body), "friendlyName") {
		t.Fatalf("body: %q", got.Body)
	}
	if got.Header("server") != "Linux/3.14 UPnP/1.0 IpBridge/1.56.0" {
		t.Fatalf("banner: %q", got.Header("server"))
	}
}

func Test404AndRefused(t *testing.T) {
	sched, _, mk := setup()
	dev := mk(23)
	NewServer(dev, 80, "mini")

	phone := mk(50)
	var status int
	Get(phone, dev.IPv4(), 80, "/nope", nil, func(r *Response) { status = r.Status })
	sched.RunFor(time.Second)
	if status != 404 {
		t.Fatalf("status %d", status)
	}

	refused := false
	Get(phone, dev.IPv4(), 8080, "/", nil, func(r *Response) { refused = r == nil })
	sched.RunFor(time.Second)
	if !refused {
		t.Fatal("closed port did not signal refusal")
	}
}

func TestPostBody(t *testing.T) {
	sched, _, mk := setup()
	dev := mk(23)
	srv := NewServer(dev, 80, "soap")
	var gotBody string
	srv.Handle("/upnp/control", func(req *Request) *Response {
		gotBody = string(req.Body)
		return &Response{Status: 200}
	})
	phone := mk(50)
	Post(phone, dev.IPv4(), 80, "/upnp/control",
		map[string]string{"SOAPACTION": `"urn:dial-multiscreen-org:service:dial:1#Launch"`},
		[]byte("<s:Envelope/>"), nil)
	sched.RunFor(time.Second)
	if gotBody != "<s:Envelope/>" {
		t.Fatalf("body: %q", gotBody)
	}
}

func TestOnRequestHook(t *testing.T) {
	sched, _, mk := setup()
	dev := mk(23)
	srv := NewServer(dev, 80, "")
	var from netip.Addr
	srv.OnRequest = func(req *Request) { from = req.From }
	phone := mk(50)
	Get(phone, dev.IPv4(), 80, "/", nil, nil)
	sched.RunFor(time.Second)
	if from != phone.IPv4() {
		t.Fatalf("From = %v", from)
	}
}
