package stun

import (
	"testing"
)

func TestRoundTrip(t *testing.T) {
	m := &Message{Type: BindingRequest, TransactionID: [12]byte{1, 2, 3}, Attributes: []byte{0, 1, 0, 0}}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != BindingRequest || got.TransactionID != m.TransactionID {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Attributes) != 4 {
		t.Fatalf("attributes: %v", got.Attributes)
	}
}

func TestUnmarshalRejects(t *testing.T) {
	if _, err := Unmarshal([]byte{0, 1}); err == nil {
		t.Fatal("short accepted")
	}
	bad := (&Message{Type: BindingRequest}).Marshal()
	bad[4] = 0 // break the cookie
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad cookie accepted")
	}
}

func TestHeuristicVsStrict(t *testing.T) {
	real := (&Message{Type: BindingRequest}).Marshal()
	if !LooksLikeSTUN(real) || !IsSTUN(real) {
		t.Fatal("real STUN not recognised")
	}
	// An RTP-shaped packet with top bits 00 and a "length" that fits fools
	// the loose heuristic but not the strict check — the Appendix C.2 trap.
	fake := make([]byte, 32)
	fake[0] = 0x00
	fake[2], fake[3] = 0, 4
	if !LooksLikeSTUN(fake) {
		t.Fatal("loose heuristic should fire on ambiguous input")
	}
	if IsSTUN(fake) {
		t.Fatal("strict check must require the cookie")
	}
}
