package stun

import "testing"

// FuzzDecode asserts the STUN codec and both classifier heuristics are
// total; a parsed message must re-marshal without panicking.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Message{Type: BindingRequest}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = LooksLikeSTUN(data)
		_ = IsSTUN(data)
		if m, err := Unmarshal(data); err == nil {
			_ = m.Marshal()
		}
	})
}
