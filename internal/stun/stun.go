// Package stun implements the STUN binding codec (RFC 5389 subset). Smart
// speakers use STUN for NAT traversal; the classifiers must both recognise
// it and — per Appendix C.2 — sometimes confuse Google's RTP sync traffic
// with it.
package stun

import (
	"encoding/binary"
	"fmt"
)

// MagicCookie is the fixed RFC 5389 cookie.
const MagicCookie = 0x2112a442

// Message types.
const (
	BindingRequest  = 0x0001
	BindingResponse = 0x0101
)

// Message is a STUN message (attributes kept raw).
type Message struct {
	Type          uint16
	TransactionID [12]byte
	Attributes    []byte
}

// Marshal encodes the message.
func (m *Message) Marshal() []byte {
	out := make([]byte, 20+len(m.Attributes))
	binary.BigEndian.PutUint16(out[0:2], m.Type)
	binary.BigEndian.PutUint16(out[2:4], uint16(len(m.Attributes)))
	binary.BigEndian.PutUint32(out[4:8], MagicCookie)
	copy(out[8:20], m.TransactionID[:])
	copy(out[20:], m.Attributes)
	return out
}

// Unmarshal decodes a message, enforcing the magic cookie.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("stun: short message")
	}
	if binary.BigEndian.Uint32(data[4:8]) != MagicCookie {
		return nil, fmt.Errorf("stun: bad magic cookie")
	}
	n := int(binary.BigEndian.Uint16(data[2:4]))
	if 20+n > len(data) {
		return nil, fmt.Errorf("stun: truncated attributes")
	}
	m := &Message{Type: binary.BigEndian.Uint16(data[0:2])}
	copy(m.TransactionID[:], data[8:20])
	m.Attributes = append([]byte(nil), data[20:20+n]...)
	return m, nil
}

// LooksLikeSTUN is the loose heuristic some DPI engines use: first two bits
// zero and a plausible length. It fires on some RTP-shaped packets too,
// which is exactly the Appendix C.2 misclassification.
func LooksLikeSTUN(data []byte) bool {
	if len(data) < 20 {
		return false
	}
	if data[0]&0xc0 != 0 {
		return false
	}
	n := int(binary.BigEndian.Uint16(data[2:4]))
	return 20+n <= len(data)
}

// IsSTUN is the strict check (magic cookie present).
func IsSTUN(data []byte) bool {
	return len(data) >= 20 && binary.BigEndian.Uint32(data[4:8]) == MagicCookie
}
