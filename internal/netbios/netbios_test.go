package netbios

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestWildcardEncoding(t *testing.T) {
	enc := EncodeName("*")
	if !strings.HasPrefix(enc, "CKAAAAAAAAAAAAAA") {
		t.Fatalf("wildcard encodes to %q", enc)
	}
	if len(enc) != 32 {
		t.Fatalf("encoded length %d", len(enc))
	}
	got, err := DecodeName(enc)
	if err != nil || got != "*" {
		t.Fatalf("decode: %q %v", got, err)
	}
}

func TestNameRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		name := "HOST" + string(rune('A'+raw%26))
		got, err := DecodeName(EncodeName(name))
		return err == nil && got == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueryBuildAndParse(t *testing.T) {
	q := NBSTATQuery(0x1234)
	// Table 5's payload shape: the CKAAA… run must appear in the bytes.
	if !strings.Contains(string(q), "CKAAAAAAAAAAAAAA") {
		t.Fatal("query lacks wildcard encoding")
	}
	txid, ok := ParseQuery(q)
	if !ok || txid != 0x1234 {
		t.Fatalf("parse: txid=%#x ok=%v", txid, ok)
	}
	if _, ok := ParseQuery([]byte("nope")); ok {
		t.Fatal("garbage accepted as query")
	}
}

func TestStatusResponseRoundTrip(t *testing.T) {
	mac := netx.MAC{0xb0, 0xbe, 0x76, 1, 2, 3}
	resp := StatusResponse(9, []string{"WORKGROUP", "MYNAS"}, mac)
	names, gotMAC, err := ParseStatusResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "WORKGROUP" || names[1] != "MYNAS" {
		t.Fatalf("names: %v", names)
	}
	if gotMAC != mac {
		t.Fatalf("MAC %v, want %v", gotMAC, mac)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		ParseQuery(data)
		ParseStatusResponse(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScanExchange(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	nas := stack.NewHost(network, netx.MAC{0xb0, 0xbe, 0x76, 0, 0, 5}, stack.DefaultPolicy)
	nas.SetIPv4(netip.MustParseAddr("192.168.10.5"))
	(&Responder{Host: nas, Names: []string{"MYNAS", "WORKGROUP"}}).Start()

	app := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 50}, stack.DefaultPolicy)
	app.SetIPv4(netip.MustParseAddr("192.168.10.50"))
	var names []string
	var mac netx.MAC
	sock := app.OpenUDPEphemeral(func(dg stack.Datagram) {
		names, mac, _ = ParseStatusResponse(dg.Payload)
	})
	sock.SendTo(netip.MustParseAddr("192.168.10.5"), Port, NBSTATQuery(1))
	sched.RunFor(time.Second)

	if len(names) != 2 || names[0] != "MYNAS" {
		t.Fatalf("scan result: %v", names)
	}
	if mac != nas.MAC() {
		t.Fatalf("scan leaked MAC %v, want %v", mac, nas.MAC())
	}
}
