// Package netbios implements the NetBIOS Name Service subset the study's
// mobile apps abuse: the NBSTAT node-status query (the "CKAAAAAA…" wildcard
// of Table 5) and its response listing the target's NetBIOS names — the
// share-enumeration side channel innosdk uses (§6.2).
package netbios

import (
	"encoding/binary"
	"fmt"
	"strings"

	"iotlan/internal/netx"
	"iotlan/internal/stack"
)

// Port is the NetBIOS name service UDP port.
const Port = 137

// EncodeName applies first-level encoding: each nibble of the space-padded
// 16-byte name becomes a letter in A..P. The wildcard "*" encodes to the
// famous "CKAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA".
func EncodeName(name string) string {
	padded := make([]byte, 16)
	copy(padded, name)
	for i := len(name); i < 16; i++ {
		padded[i] = ' '
	}
	if name == "*" {
		// The wildcard pads with NULs, not spaces.
		for i := 1; i < 16; i++ {
			padded[i] = 0
		}
	}
	var sb strings.Builder
	for _, b := range padded {
		sb.WriteByte('A' + b>>4)
		sb.WriteByte('A' + b&0x0f)
	}
	return sb.String()
}

// DecodeName reverses EncodeName.
func DecodeName(enc string) (string, error) {
	if len(enc) != 32 {
		return "", fmt.Errorf("netbios: encoded name must be 32 bytes, got %d", len(enc))
	}
	out := make([]byte, 16)
	for i := 0; i < 16; i++ {
		hi, lo := enc[2*i]-'A', enc[2*i+1]-'A'
		if hi > 15 || lo > 15 {
			return "", fmt.Errorf("netbios: invalid encoded byte at %d", i)
		}
		out[i] = hi<<4 | lo
	}
	return strings.TrimRight(string(out), " \x00"), nil
}

// NBSTATQuery builds the node-status query datagram (Table 5's payload).
func NBSTATQuery(txid uint16) []byte {
	b := make([]byte, 0, 50)
	b = binary.BigEndian.AppendUint16(b, txid)
	b = append(b, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0) // flags, qd=1
	b = append(b, 32)
	b = append(b, EncodeName("*")...)
	b = append(b, 0)       // name terminator
	b = append(b, 0, 0x21) // type NBSTAT
	b = append(b, 0, 1)    // class IN
	return b
}

// ParseQuery recognises an NBSTAT query and returns its transaction id.
func ParseQuery(data []byte) (txid uint16, ok bool) {
	if len(data) < 50 || data[12] != 32 {
		return 0, false
	}
	if binary.BigEndian.Uint16(data[2:4])&0x8000 != 0 {
		return 0, false // a response
	}
	name, err := DecodeName(string(data[13:45]))
	if err != nil || name != "*" {
		return 0, false
	}
	if data[46] != 0 || data[47] != 0x21 {
		return 0, false
	}
	return binary.BigEndian.Uint16(data[0:2]), true
}

// StatusResponse builds a node-status response advertising names and the
// unit MAC (NetBIOS responses embed the adapter address).
func StatusResponse(txid uint16, names []string, mac netx.MAC) []byte {
	b := make([]byte, 0, 128)
	b = binary.BigEndian.AppendUint16(b, txid)
	b = append(b, 0x84, 0, 0, 0, 0, 1, 0, 0, 0, 0) // response, an=1
	b = append(b, 32)
	b = append(b, EncodeName("*")...)
	b = append(b, 0)
	b = append(b, 0, 0x21, 0, 1) // NBSTAT IN
	b = append(b, 0, 0, 0, 0)    // TTL
	rdata := []byte{byte(len(names))}
	for _, n := range names {
		padded := make([]byte, 16)
		copy(padded, n)
		for i := len(n); i < 15; i++ {
			padded[i] = ' '
		}
		rdata = append(rdata, padded...)
		rdata = append(rdata, 0x04, 0x00) // active, unique
	}
	rdata = append(rdata, mac[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(rdata)))
	return append(b, rdata...)
}

// ParseStatusResponse extracts names and the MAC from a node-status
// response.
func ParseStatusResponse(data []byte) (names []string, mac netx.MAC, err error) {
	if len(data) < 57 {
		return nil, mac, fmt.Errorf("netbios: short response")
	}
	if binary.BigEndian.Uint16(data[2:4])&0x8000 == 0 {
		return nil, mac, fmt.Errorf("netbios: not a response")
	}
	rlen := int(binary.BigEndian.Uint16(data[54:56]))
	if 56+rlen > len(data) {
		return nil, mac, fmt.Errorf("netbios: truncated rdata")
	}
	rdata := data[56 : 56+rlen]
	if len(rdata) < 1 {
		return nil, mac, fmt.Errorf("netbios: empty rdata")
	}
	n := int(rdata[0])
	p := 1
	for i := 0; i < n; i++ {
		if p+18 > len(rdata) {
			return nil, mac, fmt.Errorf("netbios: truncated name entry")
		}
		names = append(names, strings.TrimRight(string(rdata[p:p+16]), " \x00"))
		p += 18
	}
	if p+6 <= len(rdata) {
		copy(mac[:], rdata[p:p+6])
	}
	return names, mac, nil
}

// Responder answers NBSTAT queries for a simulated SMB-capable device.
type Responder struct {
	Host  *stack.Host
	Names []string
}

// Start opens UDP 137.
func (r *Responder) Start() {
	r.Host.OpenUDP(Port, func(dg stack.Datagram) {
		txid, ok := ParseQuery(dg.Payload)
		if !ok {
			return
		}
		r.Host.SendUDP(Port, dg.Src, dg.SrcPort, StatusResponse(txid, r.Names, r.Host.MAC()))
	})
}
