package netbios

import (
	"testing"

	"iotlan/internal/netx"
)

// FuzzDecode asserts the NetBIOS name codec and NBSTAT message parsers are
// total over arbitrary bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(NBSTATQuery(7))
	f.Add(StatusResponse(7, []string{"FUZZBOX"}, netx.MAC{2, 0, 0, 0, 0, 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ParseQuery(data)
		if names, mac, err := ParseStatusResponse(data); err == nil {
			_ = len(names)
			_ = mac.String()
		}
		_, _ = DecodeName(string(data))
	})
}
