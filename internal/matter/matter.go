// Package matter implements the Matter commissionable- and operational-node
// discovery records (CSA Matter 1.0 §4.3) that ride on mDNS. The paper's
// discussion (§7) singles Matter out: it is pitched as the privacy-aware
// cross-platform standard, yet "still considers the local network as a
// trusted environment and exposes MAC addresses in mDNS discovery" — this
// package reproduces exactly that record structure so the exposure analysis
// can verify the claim.
package matter

import (
	"fmt"
	"strconv"
	"strings"

	"iotlan/internal/mdns"
	"iotlan/internal/netx"
)

// Service types from the Matter spec.
const (
	// CommissionableService advertises an uncommissioned (or re-openable)
	// node awaiting pairing.
	CommissionableService = "_matterc._udp.local"
	// OperationalService advertises a commissioned node to its fabric.
	OperationalService = "_matter._tcp.local"
	// Port is the default Matter UDP/TCP port.
	Port = 5540
)

// Commissionable describes a node in commissioning mode.
type Commissionable struct {
	// Discriminator is the 12-bit pairing discriminator (printed on the
	// device box).
	Discriminator uint16
	// VendorID / ProductID are CSA-assigned (Amazon = 0x1217 = 4631).
	VendorID, ProductID uint16
	// DeviceName is the user-facing name (DN key — a §5.1-style exposure).
	DeviceName string
	// MAC is the interface address; the spec builds the instance name from
	// it, which is the §7 exposure.
	MAC netx.MAC
	// PairingHint encodes how to put the device in pairing mode.
	PairingHint uint16
}

// InstanceName returns the spec's host-derived instance label: the upper-
// cased hex of the 48-bit MAC (exactly why §7 says Matter leaks MACs).
func (c Commissionable) InstanceName() string { return c.MAC.Compact() }

// TXT renders the commissionable subtype TXT record keys.
func (c Commissionable) TXT() []string {
	return []string{
		"D=" + strconv.Itoa(int(c.Discriminator&0x0fff)),
		fmt.Sprintf("VP=%d+%d", c.VendorID, c.ProductID),
		"CM=1", // commissioning mode open
		"DN=" + c.DeviceName,
		"PH=" + strconv.Itoa(int(c.PairingHint)),
		"SII=5000", "SAI=300",
	}
}

// Service builds the mDNS service advertisement for the node.
func (c Commissionable) Service() mdns.Service {
	return mdns.Service{
		Instance: c.InstanceName(),
		Type:     CommissionableService,
		Port:     Port,
		TXT:      c.TXT(),
	}
}

// Operational describes a commissioned node on a fabric.
type Operational struct {
	// CompressedFabricID and NodeID form the operational instance name
	// <fabric>-<node> in uppercase hex.
	CompressedFabricID uint64
	NodeID             uint64
}

// InstanceName returns "<fabric>-<node>".
func (o Operational) InstanceName() string {
	return fmt.Sprintf("%016X-%016X", o.CompressedFabricID, o.NodeID)
}

// Service builds the operational advertisement.
func (o Operational) Service() mdns.Service {
	return mdns.Service{
		Instance: o.InstanceName(),
		Type:     OperationalService,
		Port:     Port,
		TXT:      []string{"SII=5000", "SAI=300", "T=0"},
	}
}

// ParsedTXT decodes commissionable TXT keys into a map.
func ParsedTXT(txt []string) map[string]string {
	out := make(map[string]string, len(txt))
	for _, kv := range txt {
		if k, v, ok := strings.Cut(kv, "="); ok {
			out[k] = v
		}
	}
	return out
}

// ExposesMAC reports whether a Matter mDNS instance name is a bare MAC — the
// §7 finding, checkable against any observed advertisement.
func ExposesMAC(instance string) (netx.MAC, bool) {
	if len(instance) != 12 {
		return netx.MAC{}, false
	}
	var mac netx.MAC
	for i := 0; i < 6; i++ {
		v, err := strconv.ParseUint(instance[2*i:2*i+2], 16, 8)
		if err != nil {
			return netx.MAC{}, false
		}
		mac[i] = byte(v)
	}
	return mac, true
}
