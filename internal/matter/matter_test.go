package matter

import (
	"strings"
	"testing"

	"iotlan/internal/netx"
)

func TestCommissionableInstanceIsMAC(t *testing.T) {
	mac := netx.MAC{0xfc, 0x65, 0xde, 0x12, 0x34, 0x56}
	c := Commissionable{Discriminator: 3840, VendorID: 4631, ProductID: 1, DeviceName: "Echo Dot", MAC: mac}
	inst := c.InstanceName()
	if inst != "FC65DE123456" {
		t.Fatalf("instance %q", inst)
	}
	got, ok := ExposesMAC(inst)
	if !ok || got != mac {
		t.Fatalf("ExposesMAC(%q) = %v %v — §7's Matter finding must hold", inst, got, ok)
	}
}

func TestExposesMACRejectsNonMAC(t *testing.T) {
	for _, s := range []string{"", "XYZ", "0123456789ABCDEF-0123456789ABCDEF", "GGGGGGGGGGGG"} {
		if _, ok := ExposesMAC(s); ok {
			t.Errorf("ExposesMAC(%q) accepted", s)
		}
	}
}

func TestCommissionableTXT(t *testing.T) {
	c := Commissionable{Discriminator: 0xF00 | 0x40, VendorID: 4631, ProductID: 2, DeviceName: "Plug", PairingHint: 33}
	m := ParsedTXT(c.TXT())
	if m["VP"] != "4631+2" {
		t.Fatalf("VP: %q", m["VP"])
	}
	if m["CM"] != "1" {
		t.Fatalf("CM: %q", m["CM"])
	}
	if m["DN"] != "Plug" {
		t.Fatalf("DN exposure missing: %v", m)
	}
	if m["D"] == "" || m["PH"] != "33" {
		t.Fatalf("discriminator/hint: %v", m)
	}
}

func TestOperationalInstanceName(t *testing.T) {
	o := Operational{CompressedFabricID: 0xDEADBEEF, NodeID: 0x42}
	inst := o.InstanceName()
	if !strings.Contains(inst, "00000000DEADBEEF-0000000000000042") {
		t.Fatalf("instance %q", inst)
	}
	if _, ok := ExposesMAC(inst); ok {
		t.Fatal("operational instance should not parse as a MAC")
	}
	svc := o.Service()
	if svc.Type != OperationalService || svc.Port != Port {
		t.Fatalf("service: %+v", svc)
	}
}

func TestServiceAdvertisement(t *testing.T) {
	c := Commissionable{MAC: netx.MAC{1, 2, 3, 4, 5, 6}, VendorID: 4631, DeviceName: "X"}
	svc := c.Service()
	if svc.Type != CommissionableService {
		t.Fatalf("type %q", svc.Type)
	}
	if svc.Instance != "010203040506" {
		t.Fatalf("instance %q", svc.Instance)
	}
}
