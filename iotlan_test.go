package iotlan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testStudy caches one full run across tests (the pipelines are deliberately
// deterministic, so sharing is safe).
var testStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if testStudy == nil {
		s := New(7)
		s.IdleDuration = 30 * time.Minute
		s.Interactions = 60
		s.Households = 1200
		s.AppsToRun = 60
		s.RunAll()
		testStudy = s
	}
	return testStudy
}

func TestStudyEverythingProducesAllArtifacts(t *testing.T) {
	results := study(t).Everything()
	want := map[string]bool{
		"Table 3": false, "Figure 1": false, "Figure 2": false,
		"Figure 3": false, "Figure 4": false, "Table 1": false,
		"Table 2": false, "Table 4": false, "Table 5": false,
		"§4.2 open services": false, "§5.1 discovery intervals": false,
		"Appendix D.1": false, "§5.2 vulnerabilities": false,
		"§6.1/§6.2 exfiltration": false, "honeypot": false,
	}
	for _, r := range results {
		if _, ok := want[r.ID]; ok {
			want[r.ID] = true
		}
		if r.Rendered == "" {
			t.Errorf("%s: empty rendering", r.ID)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("artifact %s missing from Everything()", id)
		}
	}
}

func TestHeadlineShapes(t *testing.T) {
	s := study(t)

	t3 := s.Table3()
	if t3.Metrics["devices"] != 93 || t3.Metrics["unique_models"] != 78 {
		t.Errorf("Table 3: %v", t3.Metrics)
	}

	f1 := s.Figure1()
	if f := f1.Metrics["talker_fraction"]; f < 0.2 || f > 0.8 {
		t.Errorf("Figure 1 talker fraction %.2f (paper: 0.46)", f)
	}
	if f := f1.Metrics["intra_cluster_fraction"]; f < 0.5 {
		t.Errorf("Figure 1 intra-cluster fraction %.2f", f)
	}

	f2 := s.Figure2()
	if v := f2.Metrics["passive/ARP"]; v < 80 {
		t.Errorf("ARP prevalence %.1f (paper: 92)", v)
	}
	if v := f2.Metrics["passive/mDNS"]; v < 30 || v > 60 {
		t.Errorf("mDNS prevalence %.1f (paper: 44)", v)
	}
	if v := f2.Metrics["apps/mDNS"]; v < 4 || v > 8 {
		t.Errorf("app mDNS %.1f%% (paper: 6)", v)
	}
	if v := f2.Metrics["apps/SSDP"]; v < 2 || v > 6 {
		t.Errorf("app SSDP %.1f%% (paper: 4)", v)
	}

	f3 := s.Figure3()
	if v := f3.Metrics["disagree_frac"]; v <= 0 || v > 0.45 {
		t.Errorf("classifier disagreement %.2f (paper: 0.16)", v)
	}

	t2 := s.Table2()
	if v := t2.Metrics["unique_pct/UUID"]; v < 90 {
		t.Errorf("UUID uniqueness %.1f%% (paper: 94.2)", v)
	}
	if v := t2.Metrics["unique_pct/UUID+MAC"]; v < 90 {
		t.Errorf("UUID+MAC uniqueness %.1f%% (paper: 95.6)", v)
	}

	op := s.OpenPorts()
	if v := op.Metrics["unique_tcp_ports"]; v < 15 {
		t.Errorf("unique open TCP ports %.0f (paper: 178 across a larger service universe)", v)
	}
	if v := op.Metrics["echo_port_devices"]; v < 10 {
		t.Errorf("devices with Echo ports %.0f (paper: ~20%% of 93)", v)
	}

	pd := s.Periodicity()
	if v := pd.Metrics["periodic_fraction"]; v < 0.5 {
		t.Errorf("periodic fraction %.2f (paper: 0.88)", v)
	}

	vs := s.VulnSummary()
	if v := vs.Metrics["devices/CVE-2016-2183"]; v < 5 {
		t.Errorf("weak-key TLS devices %.0f (Google ecosystem)", v)
	}
	if v := vs.Metrics["high_or_critical"]; v < 10 {
		t.Errorf("high/critical findings %.0f", v)
	}

	ex := s.Exfiltration()
	if v := ex.Metrics["apps_sending/device_mac"]; v < 3 {
		t.Errorf("apps exfiltrating MACs %.0f (paper: 6 IoT apps + SDK hosts)", v)
	}
	if v := ex.Metrics["sdk_channels"]; v < 3 {
		t.Errorf("SDK channels %.0f", v)
	}

	hp := s.HoneypotReport()
	if v := hp.Metrics["visitors"]; v < 1 {
		t.Errorf("honeypot visitors %.0f", v)
	}
}

func TestWritePcaps(t *testing.T) {
	s := study(t)
	dir := filepath.Join(t.TempDir(), "pcaps")
	if err := s.WritePcaps(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 90 {
		t.Fatalf("wrote %d pcap files, want ≥90 (one per MAC)", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".pcap") {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}

func TestDeviceIPsComplete(t *testing.T) {
	s := study(t)
	ips := s.DeviceIPs()
	if len(ips) != 93 {
		t.Fatalf("%d device IPs", len(ips))
	}
	for name, ip := range ips {
		if !ip.IsValid() {
			t.Errorf("%s has no address", name)
		}
	}
}

func TestLocalRecordsFiltered(t *testing.T) {
	s := study(t)
	local := s.LocalRecords()
	if len(local) == 0 || len(local) > s.Lab.Capture.Len() {
		t.Fatalf("local=%d total=%d", len(local), s.Lab.Capture.Len())
	}
}
