package iotlan

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestExportWritesAllDatasets(t *testing.T) {
	s := study(t)
	dir := t.TempDir()
	if err := s.Export(dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"devices.json", "scans.json", "findings.json",
		"exfiltration.json", "api_access.json", "inspector.json",
		"honeypot.json", "metrics.json",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		var v interface{}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Errorf("%s: invalid JSON: %v", name, err)
		}
	}

	// devices.json carries the full inventory.
	var devices []map[string]string
	data, _ := os.ReadFile(filepath.Join(dir, "devices.json"))
	if err := json.Unmarshal(data, &devices); err != nil {
		t.Fatal(err)
	}
	if len(devices) != 93 {
		t.Fatalf("exported %d devices", len(devices))
	}

	// metrics.json includes the headline experiments.
	var metrics map[string]map[string]float64
	data, _ = os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err := json.Unmarshal(data, &metrics); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Figure 1", "Figure 2", "Table 2", "§7 mitigations"} {
		if len(metrics[id]) == 0 {
			t.Errorf("metrics.json lacks %s", id)
		}
	}
}

func TestExportOnEmptyStudySkipsGracefully(t *testing.T) {
	s := New(99)
	dir := t.TempDir()
	if err := s.Export(dir); err != nil {
		t.Fatal(err)
	}
	// Only metrics.json (empty) should exist.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "metrics.json" {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("unexpected exports: %v", names)
	}
}
