// Command iotfingerprint runs the §6.3 household-fingerprinting analysis on
// a synthetic crowdsourced dataset: identifier extraction from mDNS/SSDP
// payloads, uniqueness and entropy per identifier combination (Table 2),
// and device-identity inference accuracy (Appendix E).
//
// Usage:
//
//	iotfingerprint [-seed N] [-households 3860]
package main

import (
	"flag"
	"fmt"

	"iotlan/internal/analysis"
	"iotlan/internal/inspector"
)

func main() {
	seed := flag.Int64("seed", 1, "generation seed")
	households := flag.Int("households", 3860, "household count (paper: 3,860)")
	flag.Parse()

	ds := inspector.Generate(*seed, *households)
	fmt.Printf("dataset: %d households, %d devices\n\n", len(ds.Households), ds.Devices())

	rows := analysis.EntropyTable(ds)
	fmt.Println("Table 2 — identifier exposure, uniqueness and entropy:")
	fmt.Println(analysis.RenderEntropyTable(rows))

	acc := inspector.Accuracy(ds)
	fmt.Printf("device identity inference accuracy (Appendix E): %.1f%%\n", 100*acc)
}
