// Command iotbench times the simulator and writes machine-readable
// benchmark records.
//
// The default mode times the standard idle run (45 simulated minutes of the
// full 93-device lab); make bench uses it to produce BENCH_1.json so
// throughput regressions show up in review diffs.
//
// -artifacts instead benchmarks the analysis engine: the Inspector
// generation + decode-once index + artifact fan-out stage, run once with
// one worker and once with one worker per CPU, over identical pipelines.
// The two runs' results are checksummed — the record's "identical" field
// asserts the engine's byte-identical-output contract — and the speedup is
// written to BENCH_2.json. make bench2 drives this mode.
//
// Usage:
//
//	iotbench [-seed N] [-idle 45m] [-out BENCH_1.json]
//	iotbench -artifacts [-seed N] [-idle 45m] [-interactions 120]
//	         [-households 3860] [-out BENCH_2.json]
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"iotlan"
	"iotlan/internal/sim"
	"iotlan/internal/testbed"
)

// record is the BENCH_1.json schema. Wall-clock fields vary run to run; the
// events/frames counts are seed-deterministic and double as a sanity check
// that two benchmark runs exercised identical workloads.
type record struct {
	Seed            int64   `json:"seed"`
	IdleVirtual     string  `json:"idle_virtual"`
	Devices         int     `json:"devices"`
	WallMS          float64 `json:"wall_ms"`
	VirtualS        float64 `json:"virtual_s"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	FramesDelivered uint64  `json:"frames_delivered"`
	FramesPerSec    float64 `json:"frames_per_sec"`
}

// artifactRecord is the BENCH_2.json schema: the artifact+Inspector stage
// timed sequentially (workers=1) and in parallel (one worker per CPU), with
// a result checksum proving both produced identical bytes.
type artifactRecord struct {
	Seed             int64   `json:"seed"`
	Cores            int     `json:"cores"`
	IdleVirtual      string  `json:"idle_virtual"`
	Interactions     int     `json:"interactions"`
	Households       int     `json:"households"`
	Artifacts        int     `json:"artifacts"`
	WallSequentialMS float64 `json:"wall_sequential_ms"`
	WallParallelMS   float64 `json:"wall_parallel_ms"`
	Speedup          float64 `json:"speedup"`
	Identical        bool    `json:"identical"`
	ChecksumSHA256   string  `json:"checksum_sha256"`
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	idle := flag.Duration("idle", 45*time.Minute, "idle window to simulate")
	interactions := flag.Int("interactions", 120, "scripted interactions (-artifacts mode)")
	households := flag.Int("households", 3860, "crowdsourced households (-artifacts mode)")
	artifacts := flag.Bool("artifacts", false, "benchmark the artifact+Inspector analysis stage instead of the idle run")
	out := flag.String("out", "", "output file (\"-\" for stdout; default BENCH_1.json, or BENCH_2.json with -artifacts)")
	flag.Parse()
	if *out == "" {
		*out = "BENCH_1.json"
		if *artifacts {
			*out = "BENCH_2.json"
		}
	}

	if *artifacts {
		benchArtifacts(*seed, *idle, *interactions, *households, *out)
		return
	}

	lab := testbed.New(*seed)
	lab.Start()
	start := time.Now()
	lab.RunIdle(*idle)
	wall := time.Since(start)

	reg := lab.Telemetry().Registry
	rec := record{
		Seed:            *seed,
		IdleVirtual:     idle.String(),
		Devices:         len(lab.Devices),
		WallMS:          float64(wall) / float64(time.Millisecond),
		VirtualS:        lab.Sched.Now().Sub(sim.Epoch).Seconds(),
		Events:          reg.Total("sim_events_processed"),
		FramesDelivered: reg.CounterValue("lan_frames_delivered"),
	}
	if s := wall.Seconds(); s > 0 {
		rec.EventsPerSec = float64(rec.Events) / s
		rec.FramesPerSec = float64(rec.FramesDelivered) / s
	}
	writeJSON(rec, *out)
	fmt.Printf("bench: %d events in %.0f ms (%.0f events/sec, %.0f frames/sec) → %s\n",
		rec.Events, rec.WallMS, rec.EventsPerSec, rec.FramesPerSec, *out)
}

// benchArtifacts times Everything()'s analysis stage at workers=1 and
// workers=NumCPU. The virtual-time pipelines (passive capture, scans, vuln
// audit, apps) are sequential by design and shared by both variants, so
// they run untimed; the timed region is Inspector generation, the
// decode-once index build, identifier extraction, and the artifact fan-out.
func benchArtifacts(seed int64, idle time.Duration, interactions, households int, out string) {
	run := func(workers int) (time.Duration, string) {
		s := iotlan.New(seed,
			iotlan.WithIdleDuration(idle),
			iotlan.WithInteractions(interactions),
			iotlan.WithHouseholds(households),
			iotlan.WithWorkers(workers),
		)
		s.RunPassive()
		s.RunScans()
		s.RunVulnScans()
		s.RunApps()
		start := time.Now()
		results := s.Everything()
		wall := time.Since(start)
		return wall, checksum(results)
	}

	cores := runtime.NumCPU()
	seqWall, seqSum := run(1)
	parWall, parSum := run(cores)

	rec := artifactRecord{
		Seed:             seed,
		Cores:            cores,
		IdleVirtual:      idle.String(),
		Interactions:     interactions,
		Households:       households,
		Artifacts:        len(iotlan.Artifacts()),
		WallSequentialMS: float64(seqWall) / float64(time.Millisecond),
		WallParallelMS:   float64(parWall) / float64(time.Millisecond),
		Identical:        seqSum == parSum,
		ChecksumSHA256:   seqSum,
	}
	if parWall > 0 {
		rec.Speedup = float64(seqWall) / float64(parWall)
	}
	writeJSON(rec, out)
	fmt.Printf("bench2: %d artifacts on %d core(s): sequential %.0f ms, parallel %.0f ms (%.2fx, identical=%v) → %s\n",
		rec.Artifacts, cores, rec.WallSequentialMS, rec.WallParallelMS, rec.Speedup, rec.Identical, out)
	if !rec.Identical {
		fmt.Fprintln(os.Stderr, "bench2: parallel output diverged from sequential")
		os.Exit(1)
	}
}

// checksum hashes every result's ID, rendition, and metrics (sorted) so two
// runs can be compared byte-for-byte.
func checksum(results []iotlan.Result) string {
	h := sha256.New()
	for _, r := range results {
		io.WriteString(h, r.ID)
		io.WriteString(h, "\x00")
		io.WriteString(h, r.Rendered)
		io.WriteString(h, "\x00")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "%s=%v\n", k, r.Metrics[k])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func writeJSON(v interface{}, out string) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
}
