// Command iotbench times the simulator and writes machine-readable
// benchmark records.
//
// The default mode times the standard idle run (45 simulated minutes of the
// full 93-device lab); make bench uses it to produce BENCH_1.json so
// throughput regressions show up in review diffs.
//
// -artifacts instead benchmarks the analysis engine: the Inspector
// generation + decode-once index + artifact fan-out stage, run once with
// one worker and once with one worker per CPU, over identical pipelines.
// The two runs' results are checksummed — the record's "identical" field
// asserts the engine's byte-identical-output contract — and the speedup is
// written to BENCH_2.json. make bench2 drives this mode.
//
// -engine benchmarks the shared-prerequisite memoization that replaced the
// per-artifact duplicated work behind BENCH_2's apparent parallel slowdown.
// Three variants run over one simulated capture: the duplicated-work baseline
// (memoization off — every artifact rebuilds the decode-once index,
// communication graph, and identifier extraction it needs), the memoized
// analysis at workers=1, and the memoized analysis at workers=4. Each variant
// is timed -reps times with the caches reset and a GC between reps, and the
// minimum wall is kept — min-of-N discards the GC-debt/scheduler noise that
// produced BENCH_2's sub-1.0 "speedup" on a single-core box. All variants'
// results are checksummed and must match. make bench3 drives this mode and
// writes BENCH_3.json.
//
// BENCH_4.json (serving throughput and the served-vs-offline determinism
// gate) is written by the companion load generator, cmd/iotload.
//
// Usage:
//
//	iotbench [-seed N] [-idle 45m] [-out BENCH_1.json]
//	iotbench -artifacts [-seed N] [-idle 45m] [-interactions 120]
//	         [-households 3860] [-out BENCH_2.json]
//	iotbench -engine [-seed N] [-idle 45m] [-interactions 120]
//	         [-households 3860] [-reps 3] [-out BENCH_3.json]
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"iotlan"
	"iotlan/internal/sim"
	"iotlan/internal/testbed"
)

// record is the BENCH_1.json schema. Wall-clock fields vary run to run; the
// events/frames counts are seed-deterministic and double as a sanity check
// that two benchmark runs exercised identical workloads.
type record struct {
	Seed            int64   `json:"seed"`
	IdleVirtual     string  `json:"idle_virtual"`
	Devices         int     `json:"devices"`
	WallMS          float64 `json:"wall_ms"`
	VirtualS        float64 `json:"virtual_s"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	FramesDelivered uint64  `json:"frames_delivered"`
	FramesPerSec    float64 `json:"frames_per_sec"`
}

// artifactRecord is the BENCH_2.json schema: the artifact+Inspector stage
// timed sequentially (workers=1) and in parallel (one worker per CPU), with
// a result checksum proving both produced identical bytes.
type artifactRecord struct {
	Seed             int64   `json:"seed"`
	Cores            int     `json:"cores"`
	IdleVirtual      string  `json:"idle_virtual"`
	Interactions     int     `json:"interactions"`
	Households       int     `json:"households"`
	Artifacts        int     `json:"artifacts"`
	WallSequentialMS float64 `json:"wall_sequential_ms"`
	WallParallelMS   float64 `json:"wall_parallel_ms"`
	Speedup          float64 `json:"speedup"`
	Identical        bool    `json:"identical"`
	ChecksumSHA256   string  `json:"checksum_sha256"`
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	idle := flag.Duration("idle", 45*time.Minute, "idle window to simulate")
	interactions := flag.Int("interactions", 120, "scripted interactions (-artifacts/-engine modes)")
	households := flag.Int("households", 3860, "crowdsourced households (-artifacts/-engine modes)")
	artifacts := flag.Bool("artifacts", false, "benchmark the artifact+Inspector analysis stage instead of the idle run")
	engineMode := flag.Bool("engine", false, "benchmark the shared-prereq memoization against the duplicated-work baseline")
	reps := flag.Int("reps", 3, "timing repetitions per variant, minimum kept (-engine mode)")
	out := flag.String("out", "", "output file (\"-\" for stdout; default BENCH_1.json, BENCH_2.json with -artifacts, BENCH_3.json with -engine)")
	flag.Parse()
	if *out == "" {
		*out = "BENCH_1.json"
		if *artifacts {
			*out = "BENCH_2.json"
		}
		if *engineMode {
			*out = "BENCH_3.json"
		}
	}

	if *engineMode {
		benchEngine(*seed, *idle, *interactions, *households, *reps, *out)
		return
	}
	if *artifacts {
		benchArtifacts(*seed, *idle, *interactions, *households, *out)
		return
	}

	lab := testbed.New(*seed)
	lab.Start()
	start := time.Now()
	lab.RunIdle(*idle)
	wall := time.Since(start)

	reg := lab.Telemetry().Registry
	rec := record{
		Seed:            *seed,
		IdleVirtual:     idle.String(),
		Devices:         len(lab.Devices),
		WallMS:          float64(wall) / float64(time.Millisecond),
		VirtualS:        lab.Sched.Now().Sub(sim.Epoch).Seconds(),
		Events:          reg.Total("sim_events_processed"),
		FramesDelivered: reg.CounterValue("lan_frames_delivered"),
	}
	if s := wall.Seconds(); s > 0 {
		rec.EventsPerSec = float64(rec.Events) / s
		rec.FramesPerSec = float64(rec.FramesDelivered) / s
	}
	writeJSON(rec, *out)
	fmt.Printf("bench: %d events in %.0f ms (%.0f events/sec, %.0f frames/sec) → %s\n",
		rec.Events, rec.WallMS, rec.EventsPerSec, rec.FramesPerSec, *out)
}

// benchArtifacts times Everything()'s analysis stage at workers=1 and
// workers=NumCPU. The virtual-time pipelines (passive capture, scans, vuln
// audit, apps) are sequential by design and shared by both variants, so
// they run untimed; the timed region is Inspector generation, the
// decode-once index build, identifier extraction, and the artifact fan-out.
func benchArtifacts(seed int64, idle time.Duration, interactions, households int, out string) {
	run := func(workers int) (time.Duration, string) {
		s := iotlan.New(seed,
			iotlan.WithIdleDuration(idle),
			iotlan.WithInteractions(interactions),
			iotlan.WithHouseholds(households),
			iotlan.WithWorkers(workers),
		)
		s.RunPassive()
		s.RunScans()
		s.RunVulnScans()
		s.RunApps()
		start := time.Now()
		results := s.Everything()
		wall := time.Since(start)
		return wall, checksum(results)
	}

	cores := runtime.NumCPU()
	seqWall, seqSum := run(1)
	parWall, parSum := run(cores)

	rec := artifactRecord{
		Seed:             seed,
		Cores:            cores,
		IdleVirtual:      idle.String(),
		Interactions:     interactions,
		Households:       households,
		Artifacts:        len(iotlan.Artifacts()),
		WallSequentialMS: float64(seqWall) / float64(time.Millisecond),
		WallParallelMS:   float64(parWall) / float64(time.Millisecond),
		Identical:        seqSum == parSum,
		ChecksumSHA256:   seqSum,
	}
	if parWall > 0 {
		rec.Speedup = float64(seqWall) / float64(parWall)
	}
	writeJSON(rec, out)
	fmt.Printf("bench2: %d artifacts on %d core(s): sequential %.0f ms, parallel %.0f ms (%.2fx, identical=%v) → %s\n",
		rec.Artifacts, cores, rec.WallSequentialMS, rec.WallParallelMS, rec.Speedup, rec.Identical, out)
	if !rec.Identical {
		fmt.Fprintln(os.Stderr, "bench2: parallel output diverged from sequential")
		os.Exit(1)
	}
}

// engineRecord is the BENCH_3.json schema: the analysis stage timed against
// the duplicated-work baseline (shared-prereq memoization disabled) and with
// memoization on at workers=1 and workers=4. Each wall figure is the minimum
// of -reps runs with caches reset and a GC between reps. Both speedups are
// relative to the baseline; all three variants must checksum identically.
type engineRecord struct {
	Seed            int64   `json:"seed"`
	Cores           int     `json:"cores"`
	IdleVirtual     string  `json:"idle_virtual"`
	Interactions    int     `json:"interactions"`
	Households      int     `json:"households"`
	Artifacts       int     `json:"artifacts"`
	Reps            int     `json:"reps"`
	WallUnsharedMS  float64 `json:"wall_unshared_ms"`
	WallWorkers1MS  float64 `json:"wall_workers1_ms"`
	WallParallelMS  float64 `json:"wall_parallel_ms"`
	SpeedupWorkers1 float64 `json:"speedup_workers1"`
	SpeedupWorkers4 float64 `json:"speedup_workers4"`
	Identical       bool    `json:"identical"`
	ChecksumSHA256  string  `json:"checksum_sha256"`
}

// benchEngine times Everything()'s analysis stage in three variants over one
// simulated workload: memoization off at workers=1 (the duplicated-work
// behaviour the memoization replaced — every artifact rebuilds the
// decode-once index, communication graph, and identifier extraction), and
// memoization on at workers=1 and workers=4. The virtual-time pipelines run
// once per study, untimed. Each variant is timed reps times — caches dropped
// and a GC forced before every measurement — and the minimum wall is kept,
// so one unlucky GC or scheduler stall cannot manufacture a slowdown.
func benchEngine(seed int64, idle time.Duration, interactions, households, reps int, out string) {
	if reps < 1 {
		reps = 1
	}
	newStudy := func(opts ...iotlan.Option) *iotlan.Study {
		s := iotlan.New(seed, append([]iotlan.Option{
			iotlan.WithIdleDuration(idle),
			iotlan.WithInteractions(interactions),
			iotlan.WithHouseholds(households),
			iotlan.WithWorkers(1),
		}, opts...)...)
		s.RunAll()
		return s
	}
	unshared := newStudy(iotlan.WithoutSharedPrereqs())
	shared := newStudy()

	timeOnce := func(s *iotlan.Study, workers int) (time.Duration, string) {
		s.Workers = workers
		s.ResetAnalysisCaches()
		runtime.GC()
		start := time.Now()
		results := s.Everything()
		return time.Since(start), checksum(results)
	}
	min := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}

	const huge = time.Duration(1<<63 - 1)
	wallU, wallW1, wallW4 := huge, huge, huge
	var sumU, sumW1, sumW4 string
	for r := 0; r < reps; r++ {
		wu, su := timeOnce(unshared, 1)
		w1, s1 := timeOnce(shared, 1)
		w4, s4 := timeOnce(shared, 4)
		wallU, wallW1, wallW4 = min(wallU, wu), min(wallW1, w1), min(wallW4, w4)
		sumU, sumW1, sumW4 = su, s1, s4
	}

	rec := engineRecord{
		Seed:           seed,
		Cores:          runtime.NumCPU(),
		IdleVirtual:    idle.String(),
		Interactions:   interactions,
		Households:     households,
		Artifacts:      len(iotlan.Artifacts()),
		Reps:           reps,
		WallUnsharedMS: float64(wallU) / float64(time.Millisecond),
		WallWorkers1MS: float64(wallW1) / float64(time.Millisecond),
		WallParallelMS: float64(wallW4) / float64(time.Millisecond),
		Identical:      sumU == sumW1 && sumW1 == sumW4,
		ChecksumSHA256: sumU,
	}
	if wallW1 > 0 {
		rec.SpeedupWorkers1 = float64(wallU) / float64(wallW1)
	}
	if wallW4 > 0 {
		rec.SpeedupWorkers4 = float64(wallU) / float64(wallW4)
	}
	writeJSON(rec, out)
	fmt.Printf("bench3: %d artifacts, %d rep(s): unshared %.0f ms, workers=1 %.0f ms (%.2fx), workers=4 %.0f ms (%.2fx), identical=%v → %s\n",
		rec.Artifacts, reps, rec.WallUnsharedMS, rec.WallWorkers1MS, rec.SpeedupWorkers1,
		rec.WallParallelMS, rec.SpeedupWorkers4, rec.Identical, out)
	if !rec.Identical {
		fmt.Fprintln(os.Stderr, "bench3: variant outputs diverged")
		os.Exit(1)
	}
}

// checksum hashes every result's ID, rendition, and metrics (sorted) so two
// runs can be compared byte-for-byte.
func checksum(results []iotlan.Result) string {
	h := sha256.New()
	for _, r := range results {
		io.WriteString(h, r.ID)
		io.WriteString(h, "\x00")
		io.WriteString(h, r.Rendered)
		io.WriteString(h, "\x00")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "%s=%v\n", k, r.Metrics[k])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func writeJSON(v interface{}, out string) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
}
