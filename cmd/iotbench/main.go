// Command iotbench times the standard idle run (45 simulated minutes of the
// full 93-device lab) and writes a machine-readable benchmark record. make
// bench uses it to produce BENCH_1.json so throughput regressions show up
// in review diffs.
//
// Usage:
//
//	iotbench [-seed N] [-idle 45m] [-out BENCH_1.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"iotlan/internal/sim"
	"iotlan/internal/testbed"
)

// record is the BENCH_1.json schema. Wall-clock fields vary run to run; the
// events/frames counts are seed-deterministic and double as a sanity check
// that two benchmark runs exercised identical workloads.
type record struct {
	Seed            int64   `json:"seed"`
	IdleVirtual     string  `json:"idle_virtual"`
	Devices         int     `json:"devices"`
	WallMS          float64 `json:"wall_ms"`
	VirtualS        float64 `json:"virtual_s"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	FramesDelivered uint64  `json:"frames_delivered"`
	FramesPerSec    float64 `json:"frames_per_sec"`
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	idle := flag.Duration("idle", 45*time.Minute, "idle window to simulate")
	out := flag.String("out", "BENCH_1.json", "output file (\"-\" for stdout)")
	flag.Parse()

	lab := testbed.New(*seed)
	lab.Start()
	start := time.Now()
	lab.RunIdle(*idle)
	wall := time.Since(start)

	reg := lab.Telemetry().Registry
	rec := record{
		Seed:            *seed,
		IdleVirtual:     idle.String(),
		Devices:         len(lab.Devices),
		WallMS:          float64(wall) / float64(time.Millisecond),
		VirtualS:        lab.Sched.Now().Sub(sim.Epoch).Seconds(),
		Events:          reg.Total("sim_events_processed"),
		FramesDelivered: reg.CounterValue("lan_frames_delivered"),
	}
	if s := wall.Seconds(); s > 0 {
		rec.EventsPerSec = float64(rec.Events) / s
		rec.FramesPerSec = float64(rec.FramesDelivered) / s
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("bench: %d events in %.0f ms (%.0f events/sec, %.0f frames/sec) → %s\n",
		rec.Events, rec.WallMS, rec.EventsPerSec, rec.FramesPerSec, *out)
}
