// Command iotclassify classifies the packets in a pcap file with both the
// tshark-like and nDPI-like engines and prints the per-flow labels, the
// Appendix C.2 agreement matrix, and the corrected labels.
//
// Usage:
//
//	iotclassify capture.pcap
//	iotlab -out pcaps/ && iotclassify pcaps/*.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"iotlan/internal/classify"
	"iotlan/internal/pcap"
)

func main() {
	verbose := flag.Bool("v", false, "print every flow's labels")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: iotclassify [-v] capture.pcap [more.pcap...]")
		os.Exit(2)
	}
	var records []pcap.Record
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recs, err := pcap.ReadFile(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		records = append(records, recs...)
	}
	local := pcap.FilterLocal(records)
	fmt.Printf("%d packets read, %d local\n\n", len(records), len(local))

	flows, nonFlow := classify.Assemble(local)
	spec, dpi, final := classify.SpecClassifier{}, classify.DPIClassifier{}, classify.Final{}
	if *verbose {
		fmt.Printf("%-48s %-18s %-18s %-18s\n", "flow", "tshark-like", "nDPI-like", "corrected")
		for _, f := range flows {
			key := fmt.Sprintf("%s:%d → %s:%d/%s", f.Key.Src, f.Key.SrcPort, f.Key.Dst, f.Key.DstPort, f.Key.Proto)
			fmt.Printf("%-48s %-18s %-18s %-18s\n", key, spec.Classify(f), dpi.Classify(f), final.Classify(f))
		}
		fmt.Println()
	}

	var finalLabels []string
	for _, f := range flows {
		finalLabels = append(finalLabels, final.Classify(f))
	}
	for _, p := range nonFlow {
		finalLabels = append(finalLabels, final.ClassifyPacket(p))
	}
	fmt.Println("corrected label distribution:")
	for _, lc := range classify.CountLabels(finalLabels) {
		fmt.Printf("  %-20s %6d\n", lc.Label, lc.Count)
	}

	c := classify.Compare(flows, nonFlow)
	sp, dp, dis, nei := c.Fractions()
	fmt.Printf("\nagreement matrix (Appendix C.2 / Figure 3):\n%s\n", c.Render())
	fmt.Printf("tshark-labeled %.1f%%  nDPI-labeled %.1f%%  disagree %.1f%%  neither %.1f%%\n",
		100*sp, 100*dp, 100*dis, 100*nei)
}
