// Command iothoneypot runs the protocol honeypot on a real network using the
// standard library: SSDP, HTTP device-description and telnet responders that
// embed a honeytoken in every identifying field and log each interaction.
//
// Usage:
//
//	iothoneypot [-ssdp :1900] [-http :8080] [-telnet :2323] [-interval 10s]
//
// Low ports require elevated privileges; the defaults avoid :23.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"iotlan/internal/honeypot"
)

func main() {
	ssdpAddr := flag.String("ssdp", ":1900", "SSDP UDP listen address")
	httpAddr := flag.String("http", ":8080", "HTTP TCP listen address")
	telnetAddr := flag.String("telnet", ":2323", "telnet TCP listen address")
	interval := flag.Duration("interval", 10*time.Second, "stats print interval")
	seed := flag.Int64("seed", time.Now().UnixNano(), "honeytoken seed")
	flag.Parse()

	hp := honeypot.New("iothoneypot", *seed)
	srv := &honeypot.Server{HP: hp, SSDPAddr: *ssdpAddr, HTTPAddr: *httpAddr, TelnetAddr: *telnetAddr}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("honeypot up: ssdp=%s http=%s telnet=%s\nhoneytoken: %s\n",
		*ssdpAddr, *httpAddr, *telnetAddr, hp.Token)
	fmt.Println("search your exfiltration logs for the token to trace propagation; ^C to stop")

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	printed := 0
	for {
		select {
		case <-ctx.Done():
			fmt.Printf("\nfinal: %v, %d visitors\n", hp.Interactions(), len(hp.Visitors()))
			return
		case <-ticker.C:
			for _, e := range hp.Events[printed:] {
				fmt.Printf("%s %-7s %-16s %s\n", e.Time.Format("15:04:05"), e.Proto, e.From, e.Detail)
			}
			printed = len(hp.Events)
		}
	}
}
