// Command iotload drives iotserve with synthesized households and writes a
// bench record (BENCH_5.json by default): upload throughput, latency
// percentiles, per-stage server-side quantiles scraped from /metrics, and
// the determinism gate — after all uploads land, the server's fleet Table 2
// must checksum identically to the offline Study pipeline over the same
// generated dataset.
//
// With no -addr it self-hosts an in-process serve.Server on a real
// 127.0.0.1 TCP listener, so `make bench5` is a single command; -addr
// points it at an external iotserve instead (the determinism gate then
// requires the server to have ingested exactly this load).
//
// Every upload honors backpressure: a 429 answer sleeps the Retry-After
// hint and retries, so the "dropped" count is zero unless the server
// refuses an upload for a non-backpressure reason. -dup-frac re-posts a
// fraction of the upload set after the originals, exercising the server's
// content-hash cache; the bench record counts the observed hits.
//
// -diurnal shapes each synthetic capture's frame timestamps by the resident
// layer's typical hour-of-day histogram (resident.TypicalHours) instead of
// the flat one-frame-burst-per-second layout, so uploaded captures carry the
// diurnal structure of a lived-in household. Off by default so classic bench
// checksums are unchanged.
//
// After the load, iotload scrapes GET /metrics and strict-parses the
// Prometheus exposition (the same parser the obs golden tests use). A
// malformed page or empty per-stage histograms fail the run — observability
// regressions break the bench, not just dashboards.
//
// -stream switches to streamed generation for very large fleets (the
// BENCH_6 gate runs ≥100k households): uploaders draw each household on
// demand from inspector.Generator instead of materializing the corpus, and
// the offline side of the determinism gate folds batched entropy partials
// (analysis.EntropyPartialOf + MergeEntropy) so neither side ever holds the
// full fleet. -shards sizes the self-hosted server's fleet sharding, and
// -data-dir makes it durable (WAL + checkpoints), so one command exercises
// the full sharded/durable ingest path.
//
// -sustained switches to the BENCH_7 mixed read/write comparison: the same
// churning load (every round re-uploads every household with changed
// contents) runs against a self-hosted server twice — incremental artifact
// maintenance on, then off — while concurrent readers time mid-ingest fleet
// Table 2 reads. The record reports the read-latency speedup and upload
// throughput ratio, and the run fails unless both servers converge to
// byte-identical artifacts and the incremental shadow-batch self-check is
// clean. See cmd/iotload/bench7.go.
//
// Usage:
//
//	iotload [-households 200] [-concurrency 16] [-seed 1]
//	        [-mode mixed|inspector|capture] [-dup-frac 0.25] [-diurnal]
//	        [-addr host:port] [-queue 64] [-workers N] [-shards N]
//	        [-data-dir DIR] [-checkpoint-every 4096] [-stream]
//	        [-sustained] [-readers 2] [-rounds 5]
//	        [-out BENCH_5.json]
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"iotlan"
	"iotlan/internal/analysis"
	"iotlan/internal/inspector"
	"iotlan/internal/obs"
	"iotlan/internal/pcap"
	"iotlan/internal/resident"
	"iotlan/internal/serve"
)

// benchRecord is the bench JSON schema. Wall-clock and percentile fields
// vary run to run; uploads/dropped/identical/checksum are the gates.
type benchRecord struct {
	Seed          int64   `json:"seed"`
	Households    int     `json:"households"`
	Concurrency   int     `json:"concurrency"`
	Mode          string  `json:"mode"`
	DupFrac       float64 `json:"dup_frac"`
	Shards        int     `json:"shards,omitempty"`
	Stream        bool    `json:"stream,omitempty"`
	Uploads       int     `json:"uploads"`
	Retries429    int     `json:"retries_429"`
	Dropped       int     `json:"dropped"`
	CacheHits     int     `json:"cache_hits"`
	WallMS        float64 `json:"wall_ms"`
	UploadsPerSec float64 `json:"uploads_per_sec"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	// StageQuantiles is the server's own view of where upload time went,
	// read back from the /metrics exposition's serve_stage_ms histograms.
	StageQuantiles map[string]stageQuantiles `json:"stage_quantiles_ms,omitempty"`
	// Identical asserts the serving determinism contract: fleet Table 2 from
	// the concurrently-loaded server checksums equal to the offline Study.
	Identical      bool   `json:"identical"`
	ChecksumSHA256 string `json:"checksum_sha256"`
}

// stageQuantiles is one pipeline stage's scraped latency distribution.
type stageQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// upload is one queued HTTP POST.
type upload struct {
	path string
	body []byte
}

// outcome is one upload's accounting.
type outcome struct {
	latency  time.Duration
	retries  int
	dropped  bool
	cacheHit bool
}

func main() {
	households := flag.Int("households", 200, "households to synthesize and upload")
	concurrency := flag.Int("concurrency", 16, "concurrent uploaders")
	seed := flag.Int64("seed", 1, "generation seed")
	mode := flag.String("mode", "mixed", "upload mix: inspector, capture, or mixed (both per household)")
	dupFrac := flag.Float64("dup-frac", 0.25, "fraction of the upload set re-posted after the originals (cache exercise)")
	addr := flag.String("addr", "", "target server (empty = self-host in process)")
	workers := flag.Int("workers", 0, "self-hosted server workers (0 = one per CPU)")
	queue := flag.Int("queue", 64, "self-hosted server queue capacity")
	shards := flag.Int("shards", 0, "self-hosted server fleet shards (0 = server default)")
	dataDir := flag.String("data-dir", "", "self-hosted server durable state dir (empty = in-memory)")
	checkpointEvery := flag.Int("checkpoint-every", 4096, "self-hosted server checkpoint cadence in WAL records")
	stream := flag.Bool("stream", false, "generate each household on demand instead of materializing the corpus (inspector mode only)")
	diurnal := flag.Bool("diurnal", false, "spread synthetic capture frames over a resident-shaped hour-of-day distribution (capture/mixed modes)")
	sustained := flag.Bool("sustained", false, "BENCH_7 mode: sustained mixed read/write load, incremental vs recompute read path (self-hosted only)")
	readers := flag.Int("readers", 2, "concurrent artifact readers in -sustained mode")
	rounds := flag.Int("rounds", 5, "re-upload rounds in -sustained mode (each round changes every household's contents)")
	out := flag.String("out", "BENCH_5.json", "output file (\"-\" for stdout)")
	flag.Parse()
	if *sustained {
		if *addr != "" {
			fmt.Fprintln(os.Stderr, "iotload: -sustained self-hosts both configurations; -addr is not supported")
			os.Exit(2)
		}
		runSustained(*seed, *households, *concurrency, *readers, *rounds, *shards, *workers, *queue, *out)
		return
	}
	if *mode != "inspector" && *mode != "capture" && *mode != "mixed" {
		fmt.Fprintf(os.Stderr, "iotload: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	if *dupFrac < 0 || *dupFrac > 1 {
		fmt.Fprintf(os.Stderr, "iotload: -dup-frac %v outside [0,1]\n", *dupFrac)
		os.Exit(2)
	}
	if *stream && *mode != "inspector" {
		fmt.Fprintln(os.Stderr, "iotload: -stream requires -mode inspector")
		os.Exit(2)
	}

	base := *addr
	if base == "" {
		srv, err := serve.Open(serve.Config{
			Workers: *workers, QueueCapacity: *queue, Shards: *shards,
			DataDir: *dataDir, CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "iotload:", err)
			os.Exit(1)
		}
		httpSrv := serve.NewHTTPServer("", srv.Mux())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "iotload:", err)
			os.Exit(1)
		}
		go httpSrv.Serve(ln)
		defer func() {
			httpSrv.Close()
			srv.Close()
		}()
		base = ln.Addr().String()
		fmt.Printf("iotload: self-hosted iotserve on %s\n", base)
	}
	base = "http://" + base

	client := &http.Client{Timeout: 2 * time.Minute}
	var wg sync.WaitGroup
	var uploadCount int
	var results chan outcome
	gen := inspector.NewGenerator(*seed)
	start := time.Now()
	if *stream {
		// Streamed load: uploaders draw households on demand — index i
		// beyond the fleet re-uploads household i mod fleet (the duplicate
		// tail), encoding at post time so memory stays flat at any scale.
		nDup := int(*dupFrac * float64(*households))
		uploadCount = *households + nDup
		results = make(chan outcome, uploadCount)
		work := make(chan int)
		for i := 0; i < *concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range work {
					h := gen.Household(idx % *households)
					var buf bytes.Buffer
					if err := inspector.EncodeWire(&buf, []*inspector.Household{h}); err != nil {
						fatal(err)
					}
					results <- post(client, base, upload{path: "/v1/ingest/inspector", body: buf.Bytes()})
				}
			}()
		}
		for i := 0; i < uploadCount; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
	} else {
		// Build the upload set up front so the timed region is pure load.
		ds := inspector.Generate(*seed, *households)
		var hours [24]int
		if *diurnal {
			hours = resident.TypicalHours(*seed)
		}
		var uploads []upload
		for _, h := range ds.Households {
			if *mode == "inspector" || *mode == "mixed" {
				var buf bytes.Buffer
				if err := inspector.EncodeWire(&buf, []*inspector.Household{h}); err != nil {
					fatal(err)
				}
				uploads = append(uploads, upload{path: "/v1/ingest/inspector", body: buf.Bytes()})
			}
			if *mode == "capture" || *mode == "mixed" {
				var buf bytes.Buffer
				if err := pcap.WriteFile(&buf, inspector.SyntheticCaptureHours(h, hours)); err != nil {
					fatal(err)
				}
				uploads = append(uploads, upload{
					path: fmt.Sprintf("/v1/households/%s/capture", h.ID),
					body: buf.Bytes(),
				})
			}
		}
		// Duplicates go after the originals, so by the time one is posted its
		// original has (almost always) landed and the content-hash cache answers.
		nDup := int(*dupFrac * float64(len(uploads)))
		for i := 0; i < nDup; i++ {
			uploads = append(uploads, uploads[i%len(uploads)])
		}
		uploadCount = len(uploads)
		results = make(chan outcome, uploadCount)
		work := make(chan upload)
		start = time.Now()
		for i := 0; i < *concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range work {
					results <- post(client, base, u)
				}
			}()
		}
		for _, u := range uploads {
			work <- u
		}
		close(work)
		wg.Wait()
	}
	wall := time.Since(start)
	close(results)

	rec := benchRecord{
		Seed:        *seed,
		Households:  *households,
		Concurrency: *concurrency,
		Mode:        *mode,
		DupFrac:     *dupFrac,
		Shards:      *shards,
		Stream:      *stream,
		WallMS:      float64(wall) / float64(time.Millisecond),
	}
	var lats []time.Duration
	for o := range results {
		rec.Uploads++
		rec.Retries429 += o.retries
		if o.dropped {
			rec.Dropped++
		}
		if o.cacheHit {
			rec.CacheHits++
		}
		lats = append(lats, o.latency)
	}
	if s := wall.Seconds(); s > 0 {
		rec.UploadsPerSec = float64(rec.Uploads) / s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rec.P50MS = percentileMS(lats, 0.50)
	rec.P95MS = percentileMS(lats, 0.95)
	rec.P99MS = percentileMS(lats, 0.99)

	// Determinism gate: the loaded server's fleet Table 2 vs the offline
	// pipeline over the identical corpus, iotbench-checksum style.
	// Capture-only load ingests no inspector corpus, so the gate only
	// applies when wire uploads happened.
	if *mode != "capture" {
		served, err := fetchArtifact(client, base, "table2")
		if err != nil {
			fatal(err)
		}
		offline, err := offlineTable2(gen, *seed, *households, *stream)
		if err != nil {
			fatal(err)
		}
		servedSum := checksum(served)
		rec.Identical = servedSum == checksum(offline)
		rec.ChecksumSHA256 = servedSum
	} else {
		rec.Identical = true
	}

	// Read back the server's own stage accounting from /metrics. A page the
	// strict parser refuses, or stage histograms that saw no samples, fail
	// the bench outright.
	sq, err := scrapeStageQuantiles(client, base)
	if err != nil {
		fatal(err)
	}
	rec.StageQuantiles = sq

	writeJSON(rec, *out)
	fmt.Printf("bench: %d uploads at concurrency %d in %.0f ms (%.0f/sec, %d retries, %d dropped, %d cache hits), p50 %.1f ms p95 %.1f ms p99 %.1f ms, identical=%v → %s\n",
		rec.Uploads, rec.Concurrency, rec.WallMS, rec.UploadsPerSec, rec.Retries429, rec.Dropped,
		rec.CacheHits, rec.P50MS, rec.P95MS, rec.P99MS, rec.Identical, *out)
	if rec.Dropped > 0 {
		fmt.Fprintln(os.Stderr, "bench: uploads dropped — backpressure contract violated")
		os.Exit(1)
	}
	if !rec.Identical {
		fmt.Fprintln(os.Stderr, "bench: served fleet artifact diverged from offline pipeline")
		os.Exit(1)
	}
}

// offlineTable2 computes the gate's reference Table 2. The materialized path
// runs the full offline Study; the streamed path folds batched entropy
// partials so it never holds the corpus — partition-invariant merging
// (internal/analysis/partial.go) makes the two renderings byte-identical.
func offlineTable2(gen *inspector.Generator, seed int64, households int, stream bool) (iotlan.Result, error) {
	if !stream {
		study := iotlan.New(0, iotlan.WithHouseholds(households))
		study.Inspector = inspector.Generate(seed, households)
		return study.RunArtifact("table2")
	}
	const batch = 4096
	var parts []*analysis.EntropyPartial
	for lo := 0; lo < households; lo += batch {
		n := batch
		if households-lo < n {
			n = households - lo
		}
		hhs := make([]*inspector.Household, n)
		for j := range hhs {
			hhs[j] = gen.Household(lo + j)
		}
		parts = append(parts, analysis.EntropyPartialOf(hhs, nil))
	}
	return iotlan.EntropyResult(analysis.MergeEntropy(parts)), nil
}

// scrapeStageQuantiles fetches /metrics, strict-parses the exposition, and
// interpolates p50/p95/p99 for every serve_stage_ms series from its
// cumulative buckets — server-side truth, not client-observed latency.
func scrapeStageQuantiles(client *http.Client, base string) (map[string]stageQuantiles, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	samples, _, err := obs.ParsePrometheus(string(body))
	if err != nil {
		return nil, fmt.Errorf("/metrics exposition invalid: %v", err)
	}
	buckets := map[string]map[float64]float64{}
	counts := map[string]uint64{}
	for _, s := range samples {
		stage := s.Labels["stage"]
		switch s.Name {
		case "serve_stage_ms_bucket":
			le, err := obs.ParsePromFloat(s.Labels["le"])
			if err != nil {
				return nil, fmt.Errorf("/metrics: bad le on stage %q: %v", stage, err)
			}
			if buckets[stage] == nil {
				buckets[stage] = map[float64]float64{}
			}
			buckets[stage][le] = s.Value
		case "serve_stage_ms_count":
			counts[stage] = uint64(s.Value)
		}
	}
	if len(buckets) == 0 {
		return nil, fmt.Errorf("/metrics carries no serve_stage_ms histograms")
	}
	// Every upload, whatever its kind, passes through these stages; if one
	// of them recorded nothing the instrumentation is broken. Kind-specific
	// stages (pcap.decode vs inspector.decode, artifact.build) may
	// legitimately be idle and are simply omitted from the record.
	for _, stage := range []string{"queue.wait", "body.read", "analysis", "cache.lookup"} {
		if counts[stage] == 0 {
			return nil, fmt.Errorf("/metrics: stage %q histogram empty after load", stage)
		}
	}
	out := make(map[string]stageQuantiles, len(buckets))
	for stage, b := range buckets {
		if counts[stage] == 0 {
			continue
		}
		out[stage] = stageQuantiles{
			Count: counts[stage],
			P50:   obs.PromHistogramQuantile(b, 0.50),
			P95:   obs.PromHistogramQuantile(b, 0.95),
			P99:   obs.PromHistogramQuantile(b, 0.99),
		}
	}
	return out, nil
}

// post sends one upload, honoring backpressure by sleeping the server's
// retry hint and retrying. The hint comes from the unified error envelope's
// retry_after_ms (every 4xx/5xx carries it), with the Retry-After header as
// the fallback for proxies that strip bodies. A shed 429 always retries; any
// other failure retries only if the envelope says it is worth it.
func post(client *http.Client, base string, u upload) outcome {
	var o outcome
	start := time.Now()
	for {
		resp, err := client.Post(base+u.path, "application/octet-stream", bytes.NewReader(u.body))
		if err != nil {
			o.dropped = true
			o.latency = time.Since(start)
			return o
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			o.cacheHit = resp.Header.Get("X-Cache") == "hit"
			o.latency = time.Since(start)
			return o
		}
		hint := retryHint(resp, body)
		if resp.StatusCode != http.StatusTooManyRequests && hint <= 0 {
			o.dropped = true
			o.latency = time.Since(start)
			return o
		}
		o.retries++
		// Sleep a fraction of the hint with jitter-free backoff: the hint is
		// a ceiling for politeness, not a mandatory stall.
		time.Sleep(hint / 4)
	}
}

// retryHint extracts the server's backoff hint: envelope retry_after_ms
// first, Retry-After header second, one second as the 429 floor.
func retryHint(resp *http.Response, body []byte) time.Duration {
	var env struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.RetryAfterMS > 0 {
		return time.Duration(env.RetryAfterMS) * time.Millisecond
	}
	if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs > 0 {
		return time.Duration(secs) * time.Second
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return time.Second
	}
	return 0
}

// fetchArtifact pulls a fleet artifact and reshapes it as an iotlan.Result
// for checksumming.
func fetchArtifact(client *http.Client, base, name string) (iotlan.Result, error) {
	var r iotlan.Result
	resp, err := client.Get(base + "/v1/artifacts/" + name)
	if err != nil {
		return r, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return r, err
	}
	if resp.StatusCode != http.StatusOK {
		return r, fmt.Errorf("artifact %s: status %d: %s", name, resp.StatusCode, body)
	}
	var rep struct {
		ID       string             `json:"id"`
		Rendered string             `json:"rendered"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return r, err
	}
	return iotlan.Result{ID: rep.ID, Rendered: rep.Rendered, Metrics: rep.Metrics}, nil
}

// checksum mirrors iotbench's result hash: ID, rendition, sorted metrics.
func checksum(r iotlan.Result) string {
	h := sha256.New()
	io.WriteString(h, r.ID)
	io.WriteString(h, "\x00")
	io.WriteString(h, r.Rendered)
	io.WriteString(h, "\x00")
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%v\n", k, r.Metrics[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// percentileMS reads the q-th percentile from sorted latencies.
func percentileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iotload:", err)
	os.Exit(1)
}

func writeJSON(v interface{}, out string) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fatal(err)
	}
}
