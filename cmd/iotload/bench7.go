package main

// The -sustained mode (BENCH_7): a mixed read/write benchmark that holds the
// ingest stream open while readers hammer the fleet Table 2. Every round
// re-uploads every household with different device contents (same IDs), so
// each upload retracts the household's previous contribution and folds the
// new one — shard versions never sit still, and every artifact read pays the
// path under test: an O(1) clone-and-merge of live aggregates with
// incremental maintenance on, or a full per-shard batch recompute with it
// off. The same load runs against both configurations; the record reports
// read-latency speedup and upload-throughput ratio, and the run fails unless
// both servers converge to byte-identical artifacts and the incremental
// server's shadow-batch self-check is clean.

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"iotlan/internal/inspector"
	"iotlan/internal/serve"
)

// bench7Record is the BENCH_7.json schema.
type bench7Record struct {
	Seed       int64 `json:"seed"`
	Households int   `json:"households"`
	Writers    int   `json:"writers"`
	Readers    int   `json:"readers"`
	Rounds     int   `json:"rounds"`
	Shards     int   `json:"shards,omitempty"`

	Incremental sustainedStats `json:"incremental"`
	Recompute   sustainedStats `json:"recompute"`

	// ReadSpeedupP50/P95 divide the recompute path's mid-ingest artifact
	// read latency by the incremental path's — the headline of this bench.
	ReadSpeedupP50 float64 `json:"read_speedup_p50"`
	ReadSpeedupP95 float64 `json:"read_speedup_p95"`
	// UploadThroughputRatio is incremental / recompute uploads-per-second:
	// what maintaining live aggregates at ingest costs the write path.
	UploadThroughputRatio float64 `json:"upload_throughput_ratio"`

	// SelfCheckMismatches gates the run: the incremental server's live
	// aggregates, shadow-recomputed after the load, must match batch exactly.
	SelfCheckMismatches int    `json:"selfcheck_mismatches"`
	Identical           bool   `json:"identical"`
	ChecksumSHA256      string `json:"checksum_sha256"`
}

// sustainedStats is one configuration's half of the comparison.
type sustainedStats struct {
	Uploads       int     `json:"uploads"`
	Retries429    int     `json:"retries_429"`
	Dropped       int     `json:"dropped"`
	WallMS        float64 `json:"wall_ms"`
	UploadsPerSec float64 `json:"uploads_per_sec"`
	Reads         int     `json:"reads"`
	ReadP50MS     float64 `json:"read_p50_ms"`
	ReadP95MS     float64 `json:"read_p95_ms"`
	ReadP99MS     float64 `json:"read_p99_ms"`
}

// runSustained executes the full BENCH_7 comparison and writes the record.
func runSustained(seed int64, households, writers, readers, rounds, shards, workers, queue int, out string) {
	if rounds < 2 {
		fatal(fmt.Errorf("-rounds %d: sustained mode needs at least 2 (every round must dirty the fleet)", rounds))
	}
	base := inspector.Generate(seed, households)
	// Round r's corpus: base IDs, round-specific device contents. Distinct
	// bytes every round, so no upload short-circuits in the content-hash
	// result cache — each one reaches the fold path and retracts its
	// predecessor.
	variants := make([][]*inspector.Household, rounds)
	variants[0] = base.Households
	for r := 1; r < rounds; r++ {
		alt := inspector.Generate(seed+int64(r), households)
		variants[r] = make([]*inspector.Household, households)
		for i := range variants[r] {
			variants[r][i] = &inspector.Household{ID: base.Households[i].ID, Devices: alt.Households[i].Devices}
		}
	}

	runPass := func(incremental bool) (sustainedStats, string, int) {
		srv, err := serve.Open(serve.Config{
			Workers: workers, QueueCapacity: queue, Shards: shards,
			DisableIncremental: !incremental,
		})
		if err != nil {
			fatal(err)
		}
		httpSrv := serve.NewHTTPServer("", srv.Mux())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go httpSrv.Serve(ln)
		defer func() {
			httpSrv.Close()
			srv.Close()
		}()
		addr := "http://" + ln.Addr().String()
		client := &http.Client{Timeout: 2 * time.Minute}

		// Writers: each owns a disjoint household slice and walks the rounds
		// in order, so a household's uploads are sequenced — every round
		// retracts exactly the previous round's contribution — while the
		// fleet as a whole stays under continuous concurrent mutation.
		var wg sync.WaitGroup
		outcomes := make(chan outcome, rounds*households)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for i := w; i < households; i += writers {
						var buf bytes.Buffer
						if err := inspector.EncodeWire(&buf, []*inspector.Household{variants[r][i]}); err != nil {
							fatal(err)
						}
						outcomes <- post(client, addr, upload{path: "/v1/ingest/inspector", body: buf.Bytes()})
					}
				}
			}(w)
		}

		// Readers: hammer the artifact for the whole write window; every
		// recorded latency is a mid-ingest read.
		stop := make(chan struct{})
		var rg sync.WaitGroup
		readLats := make([][]time.Duration, readers)
		for ri := 0; ri < readers; ri++ {
			rg.Add(1)
			go func(ri int) {
				defer rg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					resp, err := client.Get(addr + "/v1/artifacts/table2")
					if err != nil {
						fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fatal(fmt.Errorf("sustained read: status %d", resp.StatusCode))
					}
					readLats[ri] = append(readLats[ri], time.Since(t0))
				}
			}(ri)
		}
		wg.Wait()
		wall := time.Since(start)
		close(stop)
		rg.Wait()
		close(outcomes)

		var st sustainedStats
		st.WallMS = float64(wall) / float64(time.Millisecond)
		for o := range outcomes {
			st.Uploads++
			st.Retries429 += o.retries
			if o.dropped {
				st.Dropped++
			}
		}
		if s := wall.Seconds(); s > 0 {
			st.UploadsPerSec = float64(st.Uploads) / s
		}
		var lats []time.Duration
		for _, l := range readLats {
			lats = append(lats, l...)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.Reads = len(lats)
		st.ReadP50MS = percentileMS(lats, 0.50)
		st.ReadP95MS = percentileMS(lats, 0.95)
		st.ReadP99MS = percentileMS(lats, 0.99)

		res, err := fetchArtifact(client, addr, "table2")
		if err != nil {
			fatal(err)
		}
		return st, checksum(res), srv.SelfCheck()
	}

	rec := bench7Record{
		Seed: seed, Households: households, Writers: writers,
		Readers: readers, Rounds: rounds, Shards: shards,
	}
	var incSum, recSum string
	rec.Incremental, incSum, rec.SelfCheckMismatches = runPass(true)
	rec.Recompute, recSum, _ = runPass(false)
	rec.Identical = incSum == recSum
	rec.ChecksumSHA256 = incSum
	if rec.Incremental.ReadP50MS > 0 {
		rec.ReadSpeedupP50 = rec.Recompute.ReadP50MS / rec.Incremental.ReadP50MS
	}
	if rec.Incremental.ReadP95MS > 0 {
		rec.ReadSpeedupP95 = rec.Recompute.ReadP95MS / rec.Incremental.ReadP95MS
	}
	if rec.Recompute.UploadsPerSec > 0 {
		rec.UploadThroughputRatio = rec.Incremental.UploadsPerSec / rec.Recompute.UploadsPerSec
	}

	writeJSON(rec, out)
	fmt.Printf("bench7: %d households × %d rounds, %d writers / %d readers\n", households, rounds, writers, readers)
	fmt.Printf("  incremental: %d uploads %.0f/sec, %d mid-ingest reads p50 %.2f ms p95 %.2f ms\n",
		rec.Incremental.Uploads, rec.Incremental.UploadsPerSec, rec.Incremental.Reads,
		rec.Incremental.ReadP50MS, rec.Incremental.ReadP95MS)
	fmt.Printf("  recompute:   %d uploads %.0f/sec, %d mid-ingest reads p50 %.2f ms p95 %.2f ms\n",
		rec.Recompute.Uploads, rec.Recompute.UploadsPerSec, rec.Recompute.Reads,
		rec.Recompute.ReadP50MS, rec.Recompute.ReadP95MS)
	fmt.Printf("  read speedup p50 %.1f× p95 %.1f×, upload throughput ratio %.2f, identical=%v, selfcheck mismatches=%d → %s\n",
		rec.ReadSpeedupP50, rec.ReadSpeedupP95, rec.UploadThroughputRatio, rec.Identical, rec.SelfCheckMismatches, out)
	if rec.Incremental.Dropped+rec.Recompute.Dropped > 0 {
		fmt.Fprintln(os.Stderr, "bench7: uploads dropped — backpressure contract violated")
		os.Exit(1)
	}
	if rec.SelfCheckMismatches > 0 {
		fmt.Fprintln(os.Stderr, "bench7: shadow-batch self-check found mismatches — incremental aggregates diverged")
		os.Exit(1)
	}
	if !rec.Identical {
		fmt.Fprintln(os.Stderr, "bench7: incremental and recompute servers diverged on the final artifact")
		os.Exit(1)
	}
}
