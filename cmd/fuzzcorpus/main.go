// Command fuzzcorpus seeds the protocol decoders' fuzz corpora from frames
// captured off the simulated testbed. It boots a short chaos-flavoured lab
// (so the capture includes malformed frames), buckets transport payloads by
// protocol port, and writes deduplicated seeds in Go's fuzz corpus format
// into each decoder package's testdata/fuzz/FuzzDecode directory.
//
// Run from the repository root:
//
//	go run ./cmd/fuzzcorpus
//
// The output is deterministic (fixed seed), so regenerating produces the
// same corpus files; commit them alongside the fuzz targets.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"iotlan/internal/chaos"
	"iotlan/internal/netbios"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/stun"
	"iotlan/internal/testbed"
	"iotlan/internal/tlsx"
)

// maxPerBucket caps seeds per decoder; beyond this, extra inputs add corpus
// bulk without new coverage shapes.
const maxPerBucket = 40

type bucket struct {
	dir   string
	seen  map[string]bool
	seeds [][]byte
}

func (b *bucket) add(p []byte) {
	if len(p) == 0 || len(b.seeds) >= maxPerBucket || b.seen[string(p)] {
		return
	}
	b.seen[string(p)] = true
	b.seeds = append(b.seeds, append([]byte(nil), p...))
}

func main() {
	buckets := map[string]*bucket{}
	for _, name := range []string{
		"dnsmsg", "mdns", "ssdp", "coap", "tlsx", "tuya",
		"tplink", "netbios", "stun", "dhcp", "layers",
	} {
		buckets[name] = &bucket{
			dir:  filepath.Join("internal", name, "testdata", "fuzz", "FuzzDecode"),
			seen: map[string]bool{},
		}
	}

	// A chaos-flavoured capture: loss forces retransmission-like retries and
	// the corruptor writes truncated/bit-flipped frames into the capture, so
	// the corpus contains exactly the malformed shapes the decoders must
	// survive.
	plan, err := chaos.Profile("flaky")
	if err != nil {
		panic(err)
	}
	lab := testbed.New(1, testbed.WithChaos(plan))
	lab.Start()
	lab.RunIdle(6 * time.Minute)
	lab.Interact(12)

	idx := pcap.NewIndex(lab.Capture.All, 0)
	for i, p := range idx.Packets() {
		if i%7 == 0 { // sample whole frames for the layers decoder
			buckets["layers"].add(idx.Records[i].Data)
		}
		if p.Err != nil || len(p.AppPayload) == 0 {
			continue
		}
		pay := p.AppPayload
		var sp, dp uint16
		switch {
		case p.HasUDP:
			sp, dp = p.UDP.SrcPort, p.UDP.DstPort
		case p.HasTCP:
			sp, dp = p.TCP.SrcPort, p.TCP.DstPort
		default:
			continue
		}
		on := func(port uint16) bool { return sp == port || dp == port }
		switch {
		case on(5353):
			buckets["dnsmsg"].add(pay)
			buckets["mdns"].add(pay)
		case on(53):
			buckets["dnsmsg"].add(pay)
		case on(1900):
			buckets["ssdp"].add(pay)
		case on(5683):
			buckets["coap"].add(pay)
		case on(6666) || on(6667):
			buckets["tuya"].add(pay)
		case on(9999):
			buckets["tplink"].add(pay)
		case on(137):
			buckets["netbios"].add(pay)
		case on(67) || on(68):
			buckets["dhcp"].add(pay)
		}
		if p.HasTCP && tlsx.IsTLS(pay) {
			buckets["tlsx"].add(pay)
		}
	}

	// NBNS responders only speak when queried, and nothing queries during an
	// idle run — craft the canonical NBSTAT exchange directly.
	for txid := uint16(1); txid <= 4; txid++ {
		buckets["netbios"].add(netbios.NBSTATQuery(txid))
		buckets["netbios"].add(netbios.StatusResponse(txid,
			[]string{"FUZZBOX", "WORKGROUP"}, netx.MAC{2, 0, 0, 0, byte(txid), 1}))
	}

	// No device in the catalog speaks STUN on the LAN (the classifier only
	// recognises it), so craft canonical seeds directly.
	for i, typ := range []uint16{stun.BindingRequest, stun.BindingResponse} {
		m := &stun.Message{Type: typ}
		for j := range m.TransactionID {
			m.TransactionID[j] = byte(i*12 + j)
		}
		buckets["stun"].add(m.Marshal())
		m.Attributes = []byte{0x00, 0x20, 0x00, 0x08, 0, 1, 0x21, 0x12, 0xc0, 0xa8, 0x0a, 0x05}
		buckets["stun"].add(m.Marshal())
	}

	names := make([]string, 0, len(buckets))
	for name := range buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := buckets[name]
		if err := os.MkdirAll(b.dir, 0o755); err != nil {
			panic(err)
		}
		for i, seed := range b.seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			path := filepath.Join(b.dir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				panic(err)
			}
		}
		fmt.Printf("%-8s %3d seeds → %s\n", name, len(b.seeds), b.dir)
	}
	fmt.Println("lab:", lab.Summary())
}
