// Command iotscan runs the active scanner and the Nessus-like auditor
// against the simulated lab, printing open services and vulnerability
// findings per device.
//
// Usage:
//
//	iotscan [-seed N] [-device NAME] [-full]
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"iotlan"
	"iotlan/internal/scan"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	deviceName := flag.String("device", "", "scan a single device by catalog name")
	full := flag.Bool("full", false, "sweep all 65,535 TCP ports (slow)")
	flag.Parse()

	s := iotlan.New(*seed)
	s.IdleDuration = 10 * time.Minute
	s.FullPortSweep = *full
	s.RunScans()
	s.RunVulnScans()

	names := make([]string, 0, len(s.Scans))
	for n := range s.Scans {
		if *deviceName == "" || n == *deviceName {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		res := s.Scans[name]
		if len(res.TCPOpen)+len(res.UDPOpen) == 0 && len(s.Findings[name]) == 0 {
			continue
		}
		fmt.Printf("── %s (%s) ──\n", name, res.Target)
		for _, p := range res.TCPOpen {
			fmt.Printf("  tcp/%-6d %-14s → %s\n", p, scan.GuessService("tcp", p), scan.CorrectedService("tcp", p))
		}
		for _, p := range res.UDPOpen {
			fmt.Printf("  udp/%-6d %-14s → %s\n", p, scan.GuessService("udp", p), scan.CorrectedService("udp", p))
		}
		for _, f := range s.Findings[name] {
			fmt.Printf("  [%s] %s (port %d): %s — %s\n", f.Severity, f.ID, f.Port, f.Title, f.Evidence)
		}
		fmt.Println()
	}
}
