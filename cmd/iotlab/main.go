// Command iotlab boots the simulated 93-device testbed, captures its local
// traffic, and writes per-device pcap files — the MonIoTr data-collection
// step in miniature.
//
// Usage:
//
//	iotlab [-seed N] [-idle 1h] [-interactions 100] [-residents N -days D]
//	       [-out pcaps/]
//
// -residents N replaces the idle + scripted-interaction workload with N
// persona-driven residents over -days simulated days (see
// internal/resident); -schedule prints the compiled event schedule.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"iotlan"
	"iotlan/internal/resident"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	idle := flag.Duration("idle", time.Hour, "idle capture window")
	interactions := flag.Int("interactions", 100, "scripted interactions after the idle window")
	residents := flag.Int("residents", 0, "persona-driven residents (0 = classic workload)")
	days := flag.Int("days", 3, "simulated days when -residents is set")
	schedule := flag.Bool("schedule", false, "print the compiled resident schedule")
	out := flag.String("out", "", "directory for per-device pcap files (empty = skip)")
	flag.Parse()

	s := iotlan.New(*seed, iotlan.WithResidents(resident.Household(*residents, *days)))
	s.IdleDuration = *idle
	s.Interactions = *interactions
	start := time.Now()
	s.RunPassive()
	if *schedule && s.Lab.Residents != nil {
		fmt.Print(s.Lab.Residents.Render())
	}

	fmt.Printf("lab: %s (wall %s)\n\n", s.Lab.Summary(), time.Since(start).Truncate(time.Millisecond))
	fmt.Printf("%-24s %-16s %s\n", "device", "ip", "mac")
	ips := s.DeviceIPs()
	names := make([]string, 0, len(ips))
	for n := range ips {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := s.DeviceByName(n)
		fmt.Printf("%-24s %-16s %s\n", n, ips[n], d.MAC())
	}
	fmt.Printf("\ncaptured %d frames (%d local)\n", s.Lab.Capture.Len(), len(s.LocalRecords()))

	if *out != "" {
		if err := s.WritePcaps(*out); err != nil {
			fmt.Fprintln(os.Stderr, "pcap dump:", err)
			os.Exit(1)
		}
		fmt.Printf("per-device pcaps in %s\n", *out)
	}
}
