// Command iotrepro regenerates every table and figure of the paper in one
// run and prints them in paper order, with the headline metrics inline.
//
// Usage:
//
//	iotrepro [-seed N] [-idle 45m] [-interactions 120] [-households 3860]
//	         [-apps 0] [-workers 0] [-chaos PROFILE] [-residents N -days D]
//	         [-artifact NAME] [-list] [-pcap-dir DIR] [-metrics FILE]
//	         [-trace FILE] [-http ADDR]
//
// -list prints the artifact registry (name, kind, paper reference, needed
// pipelines) and exits. -artifact runs a single registered artifact by name
// or alias ("figure1", "tab2", "ports", …), executing only the pipelines it
// needs; -only is a deprecated alias. -workers bounds analysis concurrency
// (0 = one worker per CPU) — worker count never changes output bytes.
//
// -chaos runs the lab under a named fault-injection profile (lossy, flaky,
// partition, churn, degraded — "off" disables). The same (seed, profile)
// pair produces byte-identical output on any worker count; the "chaos"
// artifact summarises what was injected.
//
// -residents N drives the lab with N persona-compiled household residents
// for -days simulated days instead of the fixed-pace interaction loop:
// diurnal device interactions, app foreground sessions, occupancy sensor
// chatter, and longitudinal drift (devices added/retired, firmware
// updates). The "diurnal" artifact renders the resulting hour-of-day
// structure. Composes with -chaos; same seed ⇒ byte-identical run.
//
// -metrics writes the telemetry report (deterministic metrics snapshot +
// wall-clock phase profile) as JSON. -trace streams the virtual-time event
// trace: a .jsonl suffix selects JSON-lines, anything else the Chrome
// trace_event format (load in chrome://tracing or Perfetto). -http mounts
// the shared operational surface from internal/serve — /metrics, /healthz,
// expvar (/debug/vars, including live metrics), and pprof (/debug/pprof/) —
// while the run executes; opt-in, nothing listens by default.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"iotlan"
	"iotlan/internal/chaos"
	"iotlan/internal/obs"
	"iotlan/internal/resident"
	"iotlan/internal/serve"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (same seed → identical run)")
	idle := flag.Duration("idle", 45*time.Minute, "idle capture window (paper: 5 days)")
	interactions := flag.Int("interactions", 120, "scripted interactions (paper: 7,191)")
	households := flag.Int("households", 3860, "crowdsourced households (paper: 3,860)")
	apps := flag.Int("apps", 0, "max apps to execute (0 = all with local behaviour)")
	workers := flag.Int("workers", 0, "analysis worker count (0 = one per CPU; never changes output)")
	chaosName := flag.String("chaos", "off",
		"fault-injection profile: "+strings.Join(chaos.ProfileNames(), ", ")+", or off")
	residents := flag.Int("residents", 0,
		"persona-driven residents (0 = classic scripted workload; personas cycle "+
			strings.Join(resident.PersonaNames(), ", ")+")")
	days := flag.Int("days", 3, "simulated days when -residents is set")
	artifact := flag.String("artifact", "", "run a single registered artifact by name (see -list)")
	list := flag.Bool("list", false, "print the artifact registry and exit")
	only := flag.String("only", "", "deprecated alias for -artifact")
	pcapDir := flag.String("pcap-dir", "", "also dump per-device pcaps into this directory")
	exportDir := flag.String("export", "", "also export datasets (scans, findings, exfiltration, …) as JSON into this directory")
	metricsFile := flag.String("metrics", "", "write the telemetry report (metrics + phase profile) as JSON to this file (\"-\" for stdout)")
	traceFile := flag.String("trace", "", "stream the virtual-time event trace to this file (.jsonl → JSON lines, else Chrome trace_event)")
	httpAddr := flag.String("http", "", "serve expvar and pprof on this address (e.g. localhost:6060) while the run executes")
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-9s %-14s %s\n", "NAME", "KIND", "PAPER", "NEEDS")
		for _, a := range iotlan.Artifacts() {
			fmt.Printf("%-14s %-9s %-14s %s\n", a.Name, a.Kind, a.PaperRef, a.Needs)
		}
		return
	}
	if *artifact == "" {
		*artifact = *only
	}

	plan, err := chaos.Profile(*chaosName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	s := iotlan.New(*seed,
		iotlan.WithIdleDuration(*idle),
		iotlan.WithInteractions(*interactions),
		iotlan.WithHouseholds(*households),
		iotlan.WithApps(*apps),
		iotlan.WithWorkers(*workers),
		iotlan.WithChaos(plan),
		iotlan.WithResidents(resident.Household(*residents, *days)),
	)

	var traceOut *os.File
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		traceOut = f
		format := obs.FormatChrome
		if strings.HasSuffix(*traceFile, ".jsonl") {
			format = obs.FormatJSONL
		}
		s.Trace = obs.NewTracer(traceOut, format)
	}
	if *httpAddr != "" {
		// One shared operational surface with iotserve: /metrics, /healthz,
		// expvar, pprof — behind an http.Server with real timeouts instead
		// of the unbounded zero-valued default.
		expvar.Publish("iotlan_metrics", expvar.Func(func() interface{} {
			if s.Lab == nil {
				return nil
			}
			return s.Lab.Telemetry().Registry.SnapshotMap()
		}))
		mux := serve.DebugMux(serve.MetricsSource{Name: "lab", Lazy: func() *obs.Registry {
			if s.Lab == nil {
				return nil
			}
			return s.Lab.Telemetry().Registry
		}})
		httpSrv := serve.NewHTTPServer(*httpAddr, mux)
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry endpoint on http://%s/metrics (expvar under /debug/vars, pprof under /debug/pprof/)\n", *httpAddr)
	}

	start := time.Now()
	var results []iotlan.Result
	if *artifact != "" {
		r, err := s.RunArtifact(*artifact)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		results = []iotlan.Result{r}
	} else {
		results = s.Everything()
	}

	for _, r := range results {
		fmt.Printf("════════ %s ════════\n%s\n", r.ID, r.Rendered)
		if len(r.Metrics) > 0 {
			keys := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("metrics:")
			for _, k := range keys {
				fmt.Printf("  %-40s %.2f\n", k, r.Metrics[k])
			}
		}
		fmt.Println()
	}
	if *exportDir != "" {
		if err := s.Export(*exportDir); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		fmt.Printf("datasets exported to %s\n", *exportDir)
	}
	if *pcapDir != "" {
		if err := s.WritePcaps(*pcapDir); err != nil {
			fmt.Fprintln(os.Stderr, "pcap dump:", err)
			os.Exit(1)
		}
		fmt.Printf("per-device pcaps written to %s\n", *pcapDir)
	}
	if s.Trace != nil {
		if err := s.Trace.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
		}
		fmt.Printf("trace: %d events written to %s\n", s.Trace.Events(), *traceFile)
		traceOut.Close()
	}
	if *metricsFile != "" {
		report := s.MetricsReport()
		if *metricsFile == "-" {
			os.Stdout.Write(report)
		} else if err := os.WriteFile(*metricsFile, report, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		} else {
			series := 0
			if s.Lab != nil {
				series = s.Lab.Telemetry().Registry.SeriesCount()
			}
			fmt.Printf("metrics: %d series written to %s\n", series, *metricsFile)
		}
	}
	if s.Lab != nil {
		fmt.Printf("lab: %s\n", s.Lab.Summary())
	}
	fmt.Printf("wall time: %s\n", time.Since(start).Truncate(time.Millisecond))
}
