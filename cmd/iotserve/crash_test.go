package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iotlan/internal/inspector"
	"iotlan/internal/serve/store"
)

// This file is the crash-recovery harness: it builds the real iotserve
// binary, runs it as a subprocess with -data-dir, SIGKILLs it mid-ingest,
// restarts it on the same directory, and proves that every acknowledged
// upload survived, that a torn WAL tail is dropped cleanly (counted, not
// fatal), and that the recovered fleet's artifacts are byte-identical to a
// server that never crashed.

// buildServe compiles the iotserve binary once per test binary.
var buildServe = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "iotserve-bin-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "iotserve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

// serveProc is one subprocess instance of the service.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:<port>
}

// startServe launches iotserve on an ephemeral port and waits for its
// listening line.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{
		"-addr", "127.0.0.1:0", "-log-format", "none", "-trace=false",
	}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrc <- addr
			}
		}
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("iotserve never announced its listen address")
	}
	// The announcement precedes Serve; wait for the mux to answer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return &serveProc{cmd: cmd, base: base}
}

// upload posts one household in the inspector wire format and reports
// whether the server acknowledged it with 200.
func (p *serveProc) upload(t *testing.T, hh *inspector.Household) bool {
	t.Helper()
	var buf bytes.Buffer
	if err := inspector.EncodeWire(&buf, []*inspector.Household{hh}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+"/v1/ingest/inspector", "application/jsonl", &buf)
	if err != nil {
		return false // connection died: the kill won the race
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// get fetches a path and returns the body, failing on non-200.
func (p *serveProc) get(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(p.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// metricValue scrapes one un-labeled counter from /metrics.
func (p *serveProc) metricValue(t *testing.T, name string) string {
	t.Helper()
	for _, line := range strings.Split(string(p.get(t, "/metrics")), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	return ""
}

// TestCrashRecovery is the end-to-end durability gate. Timeline:
//
//  1. boot A on an empty -data-dir, ack a deterministic prefix of the
//     fleet, keep uploading, SIGKILL mid-stream — no drain, no final
//     checkpoint, no WAL close;
//  2. scar the log the way a torn write would (half a record appended to a
//     fresh segment);
//  3. boot B on the same directory (different shard count) with the
//     shadow-batch self-check armed: every acknowledged household is
//     served, the torn tail is counted under serve_wal_replay_truncated,
//     nothing else is lost, and the boot-time self-check proves the live
//     incremental aggregates the replay rebuilt render byte-identically to
//     a batch recompute (serve_selfcheck{result="ok"} > 0, no mismatches);
//  4. upload the full fleet and compare artifact bytes against a server
//     that never crashed: checksum-identical, self-check still clean.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness")
	}
	bin, err := buildServe()
	if err != nil {
		t.Fatal(err)
	}
	const households = 40
	const ackedPrefix = 25
	ds := inspector.Generate(77, households)
	dataDir := filepath.Join(t.TempDir(), "data")

	// Phase 1: ingest, then die hard.
	a := startServe(t, bin, "-data-dir", dataDir, "-shards", "4", "-checkpoint-every", "10", "-workers", "2")
	acked := make(map[string]bool, households)
	for _, hh := range ds.Households[:ackedPrefix] {
		if !a.upload(t, hh) {
			t.Fatalf("upload %s not acknowledged", hh.ID)
		}
		acked[hh.ID] = true
	}
	// Keep the ingest stream live while the kill lands: whatever of these
	// gets a 200 must also survive.
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, hh := range ds.Households[ackedPrefix:] {
			if a.upload(t, hh) {
				mu.Lock()
				acked[hh.ID] = true
				mu.Unlock()
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let some in-flight uploads race the kill
	if err := a.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	a.cmd.Wait()
	wg.Wait()
	t.Logf("killed with %d/%d households acknowledged", len(acked), households)

	// Phase 2: scar the tail — a torn record in a fresh segment, the shape
	// an interrupted write leaves on disk.
	segs, err := store.Segments(dataDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	torn := store.EncodeRecord(nil, []byte(`{"id":"never-acked"}`))
	tornPath := filepath.Join(dataDir, store.SegmentName(segs[len(segs)-1]+1))
	if err := os.WriteFile(tornPath, torn[:len(torn)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 3: boot on the scarred directory with a different shard count,
	// self-checking after every fold.
	b := startServe(t, bin, "-data-dir", dataDir, "-shards", "7", "-workers", "2", "-selfcheck-every", "1")
	if got := b.metricValue(t, "serve_wal_replay_truncated"); got != "1" {
		t.Fatalf("serve_wal_replay_truncated = %q, want 1", got)
	}
	// The boot-time self-check ran against exactly the recovered state: the
	// live partials rebuilt by replaying through the fold path must match a
	// batch recompute of the recovered records, shard by shard.
	checkSelfCheck := func(when string) {
		t.Helper()
		ok := b.metricValue(t, `serve_selfcheck{result="ok"}`)
		if n, err := strconv.Atoi(ok); err != nil || n <= 0 {
			t.Fatalf("%s: serve_selfcheck{result=\"ok\"} = %q, want > 0", when, ok)
		}
		if bad := b.metricValue(t, `serve_selfcheck{result="mismatch"}`); bad != "" && bad != "0" {
			t.Fatalf("%s: %s self-check mismatches — recovered live aggregates diverged from batch", when, bad)
		}
	}
	checkSelfCheck("after recovery boot")
	for id := range acked {
		resp, err := http.Get(b.base + "/v1/households/" + id + "/report")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("acknowledged household %s lost in crash: status %d", id, resp.StatusCode)
		}
	}

	// Phase 4: top up to the full fleet and diff against a clean run.
	for _, hh := range ds.Households {
		if !b.upload(t, hh) {
			t.Fatalf("top-up upload %s failed", hh.ID)
		}
	}
	clean := startServe(t, bin, "-data-dir", filepath.Join(t.TempDir(), "clean"), "-shards", "4", "-workers", "2")
	for _, hh := range ds.Households {
		if !clean.upload(t, hh) {
			t.Fatalf("clean upload %s failed", hh.ID)
		}
	}
	for _, name := range []string{"table2", "mitigations"} {
		got := b.get(t, "/v1/artifacts/"+name)
		want := clean.get(t, "/v1/artifacts/"+name)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s after crash recovery differs from clean run:\n%s\nvs\n%s", name, got, want)
		}
	}
	checkSelfCheck("after top-up")

	// Graceful exit writes a final checkpoint: SIGTERM, then verify one
	// exists so the next boot loads a snapshot instead of a full replay.
	if err := b.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := b.cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
	ckpts, err := store.Checkpoints(dataDir)
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint after graceful drain: %v %v", ckpts, err)
	}
}
