// Command iotserve runs the crowdsourced capture-ingestion service: the
// long-lived production shape of the paper's §6.3 pipeline, accepting
// per-household uploads and serving per-household reports plus fleet-level
// registry artifacts (Table 2 entropy/uniqueness over every ingested
// household).
//
// Endpoints:
//
//	POST /v1/households/{id}/capture   libpcap body, streamed record by record
//	POST /v1/ingest/inspector          JSONL batch in the inspector wire format
//	GET  /v1/households/{id}/report    accumulated per-household analysis
//	GET  /v1/artifacts/{name}          registry artifact over the fleet
//	GET  /v1/fleet                     fleet summary
//	GET  /metrics /healthz /debug/...  operational surface
//
// Uploads flow through a bounded worker pool behind a fixed-capacity queue;
// a full queue answers 429 + Retry-After. Results are cached by content
// hash. SIGINT/SIGTERM drains gracefully: queued and in-flight analyses
// finish, new uploads get 503, then the listener shuts down. SIGQUIT dumps
// the flight recorder (recent + slowest + errored request traces) as Chrome
// trace JSON to a file and keeps serving — the in-flight incident snapshot.
//
// With -data-dir set the service is durable: every acknowledged inspector
// ingest is written to a checksummed write-ahead log before fleet state
// changes, periodic checkpoints snapshot the sharded fleet, and boot
// replays checkpoint + WAL — acknowledged uploads survive SIGKILL. Fleet
// state is sharded by household-ID hash (-shards); artifact bytes are
// identical for any shard count.
//
// Usage:
//
//	iotserve [-addr :8080] [-workers N] [-queue 64] [-max-upload 67108864]
//	         [-timeout 30s] [-retry-after 1s] [-cache 4096]
//	         [-log-format text|json] [-trace=true] [-flight 256]
//	         [-data-dir DIR] [-shards N] [-checkpoint-every 4096]
//	         [-wal-sync group|always|none] [-incremental=true]
//	         [-selfcheck-every N]
//	iotserve -selftest    # serve an in-sim fleet over the virtual LAN
//	                      # (internal/vnet), verify artifacts, exit — no
//	                      # sockets, ports, or network privileges needed
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"iotlan/internal/serve"
	"iotlan/internal/serve/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "analysis workers (0 = one per CPU)")
	queue := flag.Int("queue", 64, "ingestion queue capacity (full queue answers 429)")
	maxUpload := flag.Int64("max-upload", 64<<20, "maximum upload body bytes (413 beyond)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-upload budget: queue wait + analysis")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	cache := flag.Int("cache", 4096, "content-hash result cache entries")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget on SIGTERM")
	logFormat := flag.String("log-format", "text", "structured request log format: text, json, or none")
	trace := flag.Bool("trace", true, "record per-upload spans into the flight recorder")
	flight := flag.Int("flight", 0, "flight recorder capacity: recent traces retained (0 = default)")
	selftest := flag.Bool("selftest", false, "serve an in-sim fleet over the virtual LAN (no sockets), verify artifacts, and exit")
	dataDir := flag.String("data-dir", "", "durable state directory: WAL + checkpoints (empty = in-memory only)")
	shards := flag.Int("shards", 8, "fleet state shards (artifact bytes are shard-count invariant)")
	checkpointEvery := flag.Int("checkpoint-every", 4096, "checkpoint after this many WAL records (0 = only on shutdown)")
	walSync := flag.String("wal-sync", "group", "WAL fsync policy: group (coalesced, default), always (per record), none (page cache only)")
	incremental := flag.Bool("incremental", true, "maintain live per-shard artifact aggregates at ingest (false = recompute shards on read)")
	selfCheckEvery := flag.Int("selfcheck-every", 0, "shadow-batch self-check after this many folds: recompute every shard from scratch and compare to the live aggregates (0 = never)")
	flag.Parse()

	if *selftest {
		if err := runSelftest(42, 8); err != nil {
			fmt.Fprintln(os.Stderr, "iotserve: selftest:", err)
			os.Exit(1)
		}
		return
	}

	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "iotserve: unknown -log-format %q (want text, json, or none)\n", *logFormat)
		os.Exit(2)
	}

	syncMode, err := store.ParseSyncMode(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotserve:", err)
		os.Exit(2)
	}
	s, err := serve.Open(serve.Config{
		Workers:            *workers,
		QueueCapacity:      *queue,
		MaxUploadBytes:     *maxUpload,
		RequestTimeout:     *timeout,
		RetryAfter:         *retryAfter,
		CacheEntries:       *cache,
		DisableTracing:     !*trace,
		FlightRecorderSize: *flight,
		Logger:             logger,
		DataDir:            *dataDir,
		Shards:             *shards,
		CheckpointEvery:    *checkpointEvery,
		WALSync:            syncMode,
		DisableIncremental: !*incremental,
		SelfCheckEvery:     *selfCheckEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotserve:", err)
		os.Exit(1)
	}
	httpSrv := serve.NewHTTPServer(*addr, s.Mux())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iotserve:", err)
		os.Exit(1)
	}
	fmt.Printf("iotserve: listening on %s (workers=%d queue=%d)\n", ln.Addr(), *workers, *queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// SIGQUIT is the incident hook: snapshot the flight recorder to a file
	// and keep serving. (signal.Notify disarms the runtime's default
	// stack-dump-and-exit handling for it.)
	if fr := s.FlightRecorder(); fr != nil {
		quitc := make(chan os.Signal, 1)
		signal.Notify(quitc, syscall.SIGQUIT)
		go func() {
			for range quitc {
				path := filepath.Join(os.TempDir(),
					fmt.Sprintf("iotserve-flight-%d.json", time.Now().UnixNano()))
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "iotserve: flight dump:", err)
					continue
				}
				fr.Dump(f)
				f.Close()
				fmt.Printf("iotserve: SIGQUIT — dumped %d request traces to %s\n", fr.Total(), path)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("iotserve: %s — draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "iotserve:", err)
		s.Close()
		os.Exit(1)
	}

	// Drain first so /healthz flips and new uploads bounce with 503 while
	// the queue empties; then stop the listener; then stop the pool.
	s.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "iotserve: shutdown:", err)
	}
	s.Close()
	fmt.Println("iotserve: drained, bye")
}
