package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"iotlan/internal/inspector"
	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/serve"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
	"iotlan/internal/vnet"
)

// runSelftest boots the full service — the same serve.Config machinery and
// net/http mux the real process runs — on a simulated LAN and drives it from
// an in-sim client, with zero real sockets. It checks that every upload is
// accepted, the fleet count is right, and the artifact bytes served over the
// virtual wire equal the ones the engine computes directly. A deploy target
// can run `iotserve -selftest` without networking privileges or free ports.
func runSelftest(seed int64, households int) error {
	sched := sim.NewScheduler(seed)
	network := lan.New(sched)
	mk := func(last byte) *stack.Host {
		h := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
	pump := vnet.NewPump(sched)
	srvNet := vnet.New(pump, mk(10))
	cliNet := vnet.New(pump, mk(11))

	s := serve.New(serve.Config{Workers: 2, QueueCapacity: households})
	defer s.Close()
	l, err := srvNet.Listen("tcp", ":80")
	if err != nil {
		return fmt.Errorf("in-sim listen: %w", err)
	}
	hs := serve.NewHTTPServer("", s.Mux())
	go hs.Serve(l)
	defer hs.Close()

	ds := inspector.Generate(seed, households)
	var clientErr error
	var served []byte
	done := pump.Go(func() {
		c, err := cliNet.Dial("tcp", "192.168.10.10:80")
		if err != nil {
			clientErr = fmt.Errorf("in-sim dial: %w", err)
			return
		}
		defer c.Close()
		br := bufio.NewReader(c)
		request := func(method, path string, body []byte) (int, []byte, error) {
			c.SetReadDeadline(cliNet.Now().Add(30 * time.Second))
			var req bytes.Buffer
			fmt.Fprintf(&req, "%s %s HTTP/1.1\r\nHost: iotserve\r\nContent-Length: %d\r\n\r\n",
				method, path, len(body))
			req.Write(body)
			if _, err := c.Write(req.Bytes()); err != nil {
				return 0, nil, err
			}
			line, err := br.ReadString('\n')
			if err != nil {
				return 0, nil, err
			}
			parts := strings.SplitN(strings.TrimSpace(line), " ", 3)
			if len(parts) < 2 {
				return 0, nil, fmt.Errorf("bad status line %q", line)
			}
			status, _ := strconv.Atoi(parts[1])
			clen := -1
			for {
				line, err := br.ReadString('\n')
				if err != nil {
					return 0, nil, err
				}
				line = strings.TrimSpace(line)
				if line == "" {
					break
				}
				if k, v, ok := strings.Cut(line, ":"); ok &&
					strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
					clen, _ = strconv.Atoi(strings.TrimSpace(v))
				}
			}
			if clen < 0 {
				return 0, nil, fmt.Errorf("%s %s: response without Content-Length", method, path)
			}
			resp := make([]byte, clen)
			if _, err := io.ReadFull(br, resp); err != nil {
				return 0, nil, err
			}
			return status, resp, nil
		}

		for _, hh := range ds.Households {
			var wire bytes.Buffer
			if err := inspector.EncodeWire(&wire, []*inspector.Household{hh}); err != nil {
				clientErr = err
				return
			}
			status, resp, err := request("POST", "/v1/ingest/inspector", wire.Bytes())
			if err != nil {
				clientErr = fmt.Errorf("upload %s: %w", hh.ID, err)
				return
			}
			if status != 200 {
				clientErr = fmt.Errorf("upload %s: status %d: %s", hh.ID, status, resp)
				return
			}
		}
		status, fleet, err := request("GET", "/v1/fleet", nil)
		if err != nil || status != 200 {
			clientErr = fmt.Errorf("fleet: status %d err %v", status, err)
			return
		}
		want := fmt.Sprintf("\"households\": %d", households)
		if !bytes.Contains(fleet, []byte(want)) {
			clientErr = fmt.Errorf("fleet summary lacks %q: %s", want, fleet)
			return
		}
		status, art, err := request("GET", "/v1/artifacts/table2", nil)
		if err != nil || status != 200 {
			clientErr = fmt.Errorf("artifact: status %d err %v", status, err)
			return
		}
		served = art
	})
	pump.RunFor(10 * time.Minute)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("in-sim client did not finish")
	}
	if clientErr != nil {
		return clientErr
	}
	direct, err := s.RunFleetArtifact(context.Background(), "table2")
	if err != nil {
		return fmt.Errorf("direct artifact: %w", err)
	}
	if !bytes.Equal(served, direct) {
		return fmt.Errorf("artifact served over the virtual wire differs from the engine's bytes")
	}
	fmt.Printf("iotserve: selftest ok — %d households ingested over the virtual LAN, table2 artifact verified (%d bytes, zero real sockets)\n",
		households, len(served))
	return nil
}
