package iotlan

import (
	"strings"
	"testing"
)

func TestRegistryCoversEverything(t *testing.T) {
	arts := Artifacts()
	if len(arts) != 18 {
		t.Fatalf("registry has %d artifacts, want 18", len(arts))
	}
	seen := map[string]bool{}
	for _, a := range arts {
		if a.Name == "" || a.PaperRef == "" || a.Kind == "" || a.Fn == nil {
			t.Errorf("incomplete artifact: %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate artifact name %q", a.Name)
		}
		seen[a.Name] = true
	}
	// Everything returns the registry order.
	results := study(t).Everything()
	for i, r := range results {
		if r.ID != arts[i].PaperRef {
			t.Errorf("result %d: ID %q, registry says %q", i, r.ID, arts[i].PaperRef)
		}
	}
}

func TestArtifactByNameResolvesAliases(t *testing.T) {
	for lookup, want := range map[string]string{
		"figure1": "figure1", "FIG1": "figure1", "Figure 1": "figure1",
		"tab2": "table2", "entropy": "table2",
		"ports": "ports", "§4.2 open services": "ports",
		"vulnerabilities": "vulns",
		"mitigation":      "mitigations",
	} {
		a, ok := ArtifactByName(lookup)
		if !ok || a.Name != want {
			t.Errorf("ArtifactByName(%q) = %q ok=%v, want %q", lookup, a.Name, ok, want)
		}
	}
	if _, ok := ArtifactByName("figure 9"); ok {
		t.Error("unknown artifact resolved")
	}
}

func TestRunArtifactUnknownNameErrors(t *testing.T) {
	s := New(3)
	_, err := s.RunArtifact("no-such-artifact")
	if err == nil {
		t.Fatal("unknown artifact did not error")
	}
	if !strings.Contains(err.Error(), "no-such-artifact") || !strings.Contains(err.Error(), "table2") {
		t.Fatalf("error should name the artifact and list known names: %v", err)
	}
}

func TestRunArtifactRunsOnlyNeededPipelines(t *testing.T) {
	s := study(t) // already fully run; RunArtifact must reuse it
	r, err := s.RunArtifact("tab2")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "Table 2" || r.Rendered == "" {
		t.Fatalf("unexpected result: %+v", r)
	}
	// A fresh study runs just the catalog-only artifact without booting a lab.
	fresh := New(3)
	if _, err := fresh.RunArtifact("table3"); err != nil {
		t.Fatal(err)
	}
	if fresh.Lab != nil {
		t.Fatal("table3 should not boot the lab")
	}
}

func TestNeedMaskString(t *testing.T) {
	if NeedMask(0).String() != "none" {
		t.Error("zero mask")
	}
	if got := (NeedPassive | NeedInspector).String(); got != "passive+inspector" {
		t.Errorf("mask render: %q", got)
	}
}

func TestNewOptions(t *testing.T) {
	c := New(11, WithHouseholds(10), WithInteractions(5), WithWorkers(2), WithApps(1))
	if c.Households != 10 || c.Interactions != 5 || c.Workers != 2 || c.AppsToRun != 1 {
		t.Fatalf("options not applied: %+v", c)
	}
}
