package iotlan

import (
	"reflect"
	"testing"
	"time"
)

// The shared-prerequisite memoization (decode-once index, communication
// graph, identifier extraction) must be invisible in output: a study with the
// caches disabled rebuilds everything per artifact yet renders byte-identical
// results, and dropping the caches mid-study changes nothing on the next
// pass.
func TestUnsharedPrereqsIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full studies")
	}
	opts := []Option{
		WithIdleDuration(2 * time.Minute),
		WithInteractions(8),
		WithHouseholds(60),
		WithApps(6),
		WithWorkers(1),
	}
	shared := New(5, opts...)
	unshared := New(5, append(opts, WithoutSharedPrereqs())...)

	a := shared.Everything()
	b := unshared.Everything()
	compareResults(t, "unshared", a, b)

	shared.ResetAnalysisCaches()
	compareResults(t, "post-reset", a, shared.Everything())
}

func compareResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Rendered != got[i].Rendered ||
			!reflect.DeepEqual(want[i].Metrics, got[i].Metrics) {
			t.Fatalf("%s: artifact %q diverged from the memoized run", label, want[i].ID)
		}
	}
}
