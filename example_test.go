package iotlan_test

import (
	"fmt"
	"time"

	"iotlan"
)

// ExampleNew shows the minimal passive-capture workflow.
func ExampleNew() {
	study := iotlan.New(7)
	study.IdleDuration = 5 * time.Minute
	study.RunPassive()

	t3 := study.Table3()
	fmt.Printf("%.0f devices, %.0f unique models\n",
		t3.Metrics["devices"], t3.Metrics["unique_models"])
	// Output: 93 devices, 78 unique models
}

// ExampleStudy_Figure1 regenerates the device-to-device graph headline.
func ExampleStudy_Figure1() {
	study := iotlan.New(7)
	study.IdleDuration = 20 * time.Minute
	f1 := study.Figure1() // runs the passive capture on demand
	fmt.Printf("talkers above zero: %v\n", f1.Metrics["talker_fraction"] > 0)
	// Output: talkers above zero: true
}

// ExampleStudy_Mitigations quantifies the §7 countermeasures.
func ExampleStudy_Mitigations() {
	study := iotlan.New(7)
	study.Households = 500
	m := study.Mitigations()
	baseline := m.Metrics["reid_rate/none"]
	full := m.Metrics["reid_rate/strip-names+randomize-uuids+redact-macs"]
	fmt.Printf("baseline re-identification high: %v, fully mitigated low: %v\n",
		baseline > 0.9, full < 0.05)
	// Output: baseline re-identification high: true, fully mitigated low: true
}
