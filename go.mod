module iotlan

go 1.22
