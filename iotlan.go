// Package iotlan reproduces "In the Room Where It Happens: Characterizing
// Local Communication and Threats in Smart Homes" (IMC 2023) as a runnable
// Go system: a simulated 93-device smart-home testbed, passive capture,
// active and vulnerability scanning, protocol honeypots, a mobile-app
// instrumentation pipeline, a crowdsourced-dataset generator, and the
// paper's analyses — every table and figure regenerable via Study.
//
// Quick start:
//
//	study := iotlan.New(1)
//	study.RunPassive()
//	fmt.Println(study.Figure1().Rendered)
//
// The heavy lifting lives in internal packages (stack, device, classify,
// scan, vuln, honeypot, app, inspector, analysis); Study wires them the way
// the paper's methodology (§3) does.
package iotlan

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"time"

	"iotlan/internal/analysis"
	"iotlan/internal/app"
	"iotlan/internal/chaos"
	"iotlan/internal/device"
	"iotlan/internal/honeypot"
	"iotlan/internal/inspector"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/pcap"
	"iotlan/internal/resident"
	"iotlan/internal/scan"
	"iotlan/internal/sim"
	"iotlan/internal/testbed"
	"iotlan/internal/vuln"
)

// Study orchestrates a full reproduction run. Zero value is not usable; use
// New.
type Study struct {
	// Seed drives every random decision; equal seeds give byte-identical
	// captures.
	Seed int64
	// IdleDuration is the no-interaction capture window (the paper used 5
	// days; shorter windows preserve the per-protocol shape).
	IdleDuration time.Duration
	// Interactions counts scripted device interactions (§3.1 used 7,191).
	Interactions int
	// Households sizes the crowdsourced dataset (§6.3 used 3,860).
	Households int
	// AppsToRun bounds how many dataset apps the instrumented phone
	// exercises (0 = all with local behaviour).
	AppsToRun int
	// FullPortSweep scans all 65,535 TCP ports per device instead of the
	// fast list (slow; the fast list covers every catalog service).
	FullPortSweep bool
	// Workers bounds analysis-engine concurrency (decode-once index build,
	// Inspector generation sharding, artifact fan-out). Values < 1 mean one
	// worker per CPU. Worker count never changes output, only wall time.
	Workers int
	// ChaosPlan configures deterministic fault injection on the lab network
	// (see internal/chaos). The zero Plan injects nothing. For a fixed
	// (Seed, ChaosPlan) pair outputs stay byte-identical across Workers.
	ChaosPlan chaos.Plan
	// ResidentPlan drives the lab with persona-compiled household schedules
	// instead of the fixed-pace Interact loop (see internal/resident). When
	// enabled, the passive window spans ResidentPlan.Duration() of virtual
	// time and interactions arrive event-driven at diurnal times; the zero
	// Plan keeps the classic idle + paced-interaction workload.
	ResidentPlan resident.Plan

	// labProfiles overrides the device catalog for the lab (subset labs keep
	// multi-day resident tests inside the -race time budget). nil = full
	// catalog.
	labProfiles []*device.Profile

	Lab       *testbed.Lab
	Honeypot  *honeypot.Honeypot
	Scans     map[string]*scan.Result
	Findings  map[string][]vuln.Finding
	Apps      []app.App
	AppRun    *app.Runtime
	Inspector *inspector.Dataset

	// Profiler collects per-phase wall-clock and event-count stats. Wall
	// times live here, never in the metrics registry, so registry snapshots
	// stay seed-deterministic.
	Profiler *obs.Profiler
	// Trace, when set before the first Run* call, receives the simulation's
	// virtual-time event trace (attached to the lab scheduler at boot).
	Trace *obs.Tracer

	passiveDone bool
	// passiveLen marks the capture boundary after the passive phase, so
	// passive analyses (Figures 1–4, Tables 1/4, §5.1, App. D.1) are not
	// polluted by later scan/app probe traffic, matching §3.1's separation.
	passiveLen int

	// sharePrereqs guards the shared-prerequisite memoization (decode-once
	// index, communication graph, identifier extraction). It is on by
	// default; WithoutSharedPrereqs disables it so benchmarks can measure
	// the duplicated-work baseline the memoization replaced.
	sharePrereqs bool

	// passiveIdx is the decode-once packet index over the passive capture:
	// every record's layers parsed exactly once, then shared read-only by all
	// artifacts. Built lazily on first PassiveIndex call.
	passiveIdx  *pcap.Index
	idxOnce     sync.Once
	identifiers *analysis.ExtractedIdentifiers
	idsOnce     sync.Once
	// graph is the memoized device-to-device communication graph shared by
	// Figure 1 and Figure 4 (both read-only consumers).
	graph     *analysis.Graph
	graphOnce sync.Once
}

// Option configures a Study at construction time.
type Option func(*Study)

// WithIdleDuration sets the no-interaction capture window.
func WithIdleDuration(d time.Duration) Option { return func(s *Study) { s.IdleDuration = d } }

// WithInteractions sets the count of scripted device interactions.
func WithInteractions(n int) Option { return func(s *Study) { s.Interactions = n } }

// WithHouseholds sizes the crowdsourced dataset.
func WithHouseholds(n int) Option { return func(s *Study) { s.Households = n } }

// WithApps bounds how many dataset apps the instrumented phone exercises
// (0 = all with local behaviour).
func WithApps(n int) Option { return func(s *Study) { s.AppsToRun = n } }

// WithFullPortSweep scans all 65,535 TCP ports per device.
func WithFullPortSweep() Option { return func(s *Study) { s.FullPortSweep = true } }

// WithTrace attaches a virtual-time event tracer before the lab boots.
func WithTrace(t *obs.Tracer) Option { return func(s *Study) { s.Trace = t } }

// WithWorkers bounds analysis-engine concurrency (< 1 = one per CPU).
func WithWorkers(n int) Option { return func(s *Study) { s.Workers = n } }

// WithChaos runs the lab under a fault-injection plan (use chaos.Profile for
// the named impairment profiles, or build a chaos.Plan directly).
func WithChaos(plan chaos.Plan) Option { return func(s *Study) { s.ChaosPlan = plan } }

// WithResidents drives the lab with a persona-compiled household schedule
// (use resident.Household for a default mix, or build a resident.Plan
// directly). Composes with WithChaos.
func WithResidents(plan resident.Plan) Option { return func(s *Study) { s.ResidentPlan = plan } }

// WithLabProfiles overrides the lab's device catalog (device.Subset builds
// named subsets). Intended for tests and scaled-down runs; artifacts keyed
// to full-catalog expectations will shrink accordingly.
func WithLabProfiles(profiles []*device.Profile) Option {
	return func(s *Study) { s.labProfiles = profiles }
}

// WithoutSharedPrereqs disables the shared-prerequisite memoization: every
// PassiveIndex/PassiveGraph/ExtractedIdentifiers call rebuilds from scratch
// instead of reusing a cached result. Output is identical either way (the
// builds are deterministic); only wall time changes. This exists so
// cmd/iotbench can measure the duplicated-work baseline the memoization
// replaced — it is not useful in production.
func WithoutSharedPrereqs() Option { return func(s *Study) { s.sharePrereqs = false } }

// New builds a study with the paper-equivalent defaults scaled to simulation
// time, then applies options.
func New(seed int64, opts ...Option) *Study {
	s := &Study{
		Seed:         seed,
		IdleDuration: 45 * time.Minute,
		Interactions: 120,
		Households:   3860,
		AppsToRun:    0,
		Profiler:     obs.NewProfiler(),
		sharePrereqs: true,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// phase wraps one pipeline stage with wall-clock, event-count, and
// virtual-time accounting. The event/virtual deltas also land in the
// registry as study_phase_events{phase=...} — those are virtual-derived and
// therefore deterministic; wall time goes only to the Profiler.
func (s *Study) phase(name string, fn func()) {
	if s.Profiler == nil {
		s.Profiler = obs.NewProfiler()
	}
	var ev0 uint64
	var v0 time.Duration
	if s.Lab != nil {
		ev0 = s.Lab.Sched.Processed
		v0 = s.Lab.Sched.Now().Sub(sim.Epoch)
	}
	start := time.Now()
	fn()
	wall := time.Since(start)
	var ev1 uint64
	var v1 time.Duration
	if s.Lab != nil {
		ev1 = s.Lab.Sched.Processed
		v1 = s.Lab.Sched.Now().Sub(sim.Epoch)
		s.Lab.Telemetry().Registry.Counter("study_phase_events", "phase", name).Add(ev1 - ev0)
	}
	s.Profiler.Add(name, wall, ev1-ev0, v1-v0)
}

// RunPassive boots the lab, captures the idle window and the scripted
// interactions, and deploys the honeypot (§3.1).
func (s *Study) RunPassive() {
	if s.passiveDone {
		return
	}
	s.phase("passive", func() {
		profiles := s.labProfiles
		if profiles == nil {
			profiles = device.Catalog()
		}
		s.Lab = testbed.NewWith(s.Seed, profiles,
			testbed.WithChaos(s.ChaosPlan), testbed.WithResidents(s.ResidentPlan))
		// The tracer must be on the scheduler before any event fires.
		s.Lab.Telemetry().Tracer = s.Trace
		s.Lab.Start()

		// Honeypot joins the LAN alongside the devices.
		s.Honeypot = honeypot.New("honey-hue", s.Seed)
		hpHost := s.Lab.AddHost(230, netx.MAC{0x02, 0x40, 0x00, 0x00, 0x02, 0x30})
		s.Honeypot.Attach(hpHost)

		if s.ResidentPlan.Enabled() {
			// Residents schedule their own interactions on the virtual
			// clock; the passive window is their whole multi-day run.
			s.Lab.RunIdle(s.ResidentPlan.Duration())
		} else {
			s.Lab.RunIdle(s.IdleDuration)
			s.Lab.Interact(s.Interactions)
		}
	})
	s.passiveDone = true
	s.passiveLen = s.Lab.Capture.Len()
}

// PassiveIndex returns the decode-once packet index over the passive
// capture. The first call parses every record's layers (sharded across
// Workers); subsequent calls — and every artifact consuming PassiveRecords —
// share the cached parse. The index is immutable once built.
func (s *Study) PassiveIndex() *pcap.Index {
	s.RunPassive()
	if !s.sharePrereqs {
		// Unshared mode: rebuild per call, store nothing (so concurrent
		// artifacts never share — and never race on — a cached build).
		return s.buildIndex()
	}
	s.idxOnce.Do(func() { s.passiveIdx = s.buildIndex() })
	return s.passiveIdx
}

func (s *Study) buildIndex() *pcap.Index {
	start := time.Now()
	idx := pcap.NewIndex(s.Lab.Capture.All[:s.passiveLen], s.Workers)
	if s.Profiler == nil {
		s.Profiler = obs.NewProfiler()
	}
	s.Profiler.Add("index", time.Since(start), uint64(idx.Len()), 0)
	return idx
}

// PassiveGraph returns the device-to-device communication graph over the
// passive capture, built once and shared read-only by Figure 1 and Figure 4
// (both only traverse it). Before this cache existed each figure rebuilt the
// graph from the full record set — the duplicated work behind the BENCH_2
// parallel regression.
func (s *Study) PassiveGraph() *analysis.Graph {
	if !s.sharePrereqs {
		return s.buildGraph()
	}
	s.graphOnce.Do(func() { s.graph = s.buildGraph() })
	return s.graph
}

func (s *Study) buildGraph() *analysis.Graph {
	start := time.Now()
	g := analysis.BuildGraph(s.PassiveRecords(), s.Lab.Devices)
	if s.Profiler == nil {
		s.Profiler = obs.NewProfiler()
	}
	s.Profiler.Add("graph", time.Since(start), uint64(len(g.Edges)), 0)
	return g
}

// ResetAnalysisCaches drops the memoized analysis prerequisites (decode-once
// index, communication graph, identifier extraction) so the next consumer
// rebuilds them. Pipeline outputs (capture, scans, findings, inspector) are
// untouched. Benchmarks use this to time repeated analysis passes over one
// simulation; results are unchanged because the builds are deterministic.
func (s *Study) ResetAnalysisCaches() {
	s.passiveIdx, s.idxOnce = nil, sync.Once{}
	s.identifiers, s.idsOnce = nil, sync.Once{}
	s.graph, s.graphOnce = nil, sync.Once{}
}

// PassiveRecords returns the capture up to the end of the passive phase,
// with each record carrying its decode-once parse cache.
func (s *Study) PassiveRecords() []pcap.Record {
	return s.PassiveIndex().Records
}

// fastPortList is 1–1024 plus every high port any catalog device can open.
func fastPortList() []uint16 {
	ports := scan.WellKnownUDPPorts() // 1–1024 (shared with TCP fast list)
	seen := map[uint16]bool{}
	for _, p := range ports {
		seen[p] = true
	}
	addAll := func(ps ...uint16) {
		for _, p := range ps {
			if p != 0 && !seen[p] {
				seen[p] = true
				ports = append(ports, p)
			}
		}
	}
	for _, prof := range device.Catalog() {
		for _, h := range prof.HTTP {
			addAll(h.Port)
		}
		for _, t := range prof.TLS {
			addAll(t.Port)
		}
		addAll(prof.TelnetPort, prof.RTPPort)
		addAll(prof.ExtraTCP...)
		addAll(prof.ExtraUDP...)
		if prof.MDNS != nil {
			for _, svc := range prof.MDNS.Services {
				addAll(svc.Port)
			}
		}
	}
	addAll(1900, 5353, 9999, 6666, 6667, 5683, 137, 4070, 8009, 8080, 10101, 11095, 1080, 9000, 560, 161)
	return ports
}

// RunScans runs the nmap-like scanner against every device (§3.1/§4.2).
// Idempotent: repeated calls reuse the first sweep.
func (s *Study) RunScans() {
	if s.Scans != nil {
		return
	}
	s.RunPassive()
	s.phase("scans", func() {
		scanner := s.Lab.AddHost(250, netx.MAC{0x02, 0x50, 0x00, 0x00, 0x02, 0x50})
		tcpPorts := fastPortList()
		if s.FullPortSweep {
			tcpPorts = scan.AllTCPPorts()
		}
		sc := &scan.Scanner{Host: scanner, TCPPorts: tcpPorts, UDPPorts: scan.WellKnownUDPPorts()}
		s.Scans = make(map[string]*scan.Result, len(s.Lab.Devices))
		for _, d := range s.Lab.Devices {
			if !d.IP().IsValid() {
				continue
			}
			name := d.Profile.Name
			sc.Scan(d.IP(), func(r *scan.Result) { s.Scans[name] = r })
			s.Lab.Sched.RunFor(30 * time.Second)
		}
	})
}

// RunVulnScans audits every device with the Nessus-like scanner (§5.2).
func (s *Study) RunVulnScans() {
	if s.Findings != nil {
		return
	}
	s.RunScans()
	s.phase("vuln", func() {
		auditor := s.Lab.AddHost(251, netx.MAC{0x02, 0x51, 0x00, 0x00, 0x02, 0x51})
		vs := &vuln.Scanner{Host: auditor}
		s.Findings = make(map[string][]vuln.Finding, len(s.Lab.Devices))
		for _, d := range s.Lab.Devices {
			res := s.Scans[d.Profile.Name]
			if res == nil {
				continue
			}
			name := d.Profile.Name
			vs.Audit(d.IP(), res.TCPOpen, res.UDPOpen, func(fs []vuln.Finding) { s.Findings[name] = fs })
			s.Lab.Sched.RunFor(time.Minute)
		}
	})
}

// RunApps exercises the app dataset on the instrumented phone (§3.2, §6).
// Idempotent: repeated calls reuse the first execution.
func (s *Study) RunApps() {
	if s.AppRun != nil {
		return
	}
	s.RunPassive()
	s.phase("apps", func() {
		s.Apps = app.Dataset(s.Seed)
		s.AppRun = app.NewRuntime(s.Lab, app.Android9)
		// Pairing-stage MACs already live in vendor clouds (§6.1's downlink
		// observation); seed a handful so downlink dissemination has content.
		var paired []string
		for _, d := range s.Lab.Devices[:8] {
			paired = append(paired, d.MAC().String())
		}
		s.AppRun.SeedCloudMACs(paired)
		run := 0
		for i := range s.Apps {
			a := &s.Apps[i]
			// Inert apps produce no local traffic; skip their sessions to keep
			// the virtual clock reasonable (the paper ran all 2,335 but only
			// ~9% touched the LAN, §6.1).
			active := a.UsesMDNS || a.UsesSSDP || a.UsesNetBIOS || a.UsesTPLink ||
				a.CollectsRouterSSID || a.CollectsRouterMAC || a.CollectsWifiMAC ||
				a.ReceivesDownlinkMACs || len(a.SDKs) > 0
			if !active {
				continue
			}
			s.AppRun.Run(a)
			run++
			if s.AppsToRun > 0 && run >= s.AppsToRun {
				break
			}
		}
	})
}

// RunInspector generates the crowdsourced dataset (§3.3), sharding
// households across Workers with per-household sub-seeds — output is
// byte-identical for any worker count. Idempotent.
func (s *Study) RunInspector() {
	if s.Inspector == nil {
		s.phase("inspector", func() {
			s.Inspector = inspector.GenerateParallel(s.Seed, s.Households, s.Workers)
		})
	}
}

// ExtractedIdentifiers returns the §6.3 identifier extraction over the
// Inspector corpus, computed once (sharded across Workers) and shared by
// Table 2 and the mitigation sweep.
func (s *Study) ExtractedIdentifiers() *analysis.ExtractedIdentifiers {
	s.RunInspector()
	if !s.sharePrereqs {
		return s.buildIdentifiers()
	}
	s.idsOnce.Do(func() { s.identifiers = s.buildIdentifiers() })
	return s.identifiers
}

func (s *Study) buildIdentifiers() *analysis.ExtractedIdentifiers {
	start := time.Now()
	ids := analysis.ExtractIdentifiers(s.Inspector, s.Workers)
	if s.Profiler == nil {
		s.Profiler = obs.NewProfiler()
	}
	s.Profiler.Add("identifiers", time.Since(start), uint64(s.Households), 0)
	return ids
}

// RunAll executes every pipeline.
func (s *Study) RunAll() {
	_ = s.RunAllContext(context.Background()) // errors only arise from ctx
}

// RunAllContext executes every pipeline, checking ctx between phases. A
// cancelled context stops before the next phase starts and returns an error
// naming the phase that did not run; already-finished phases keep their
// results, so a later call resumes where it stopped.
func (s *Study) RunAllContext(ctx context.Context) error {
	for _, st := range []struct {
		name string
		run  func()
	}{
		{"passive", s.RunPassive},
		{"scans", s.RunScans},
		{"vuln", s.RunVulnScans},
		{"apps", s.RunApps},
		{"inspector", s.RunInspector},
	} {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("iotlan: phase %s: %w", st.name, err)
		}
		st.run()
	}
	return nil
}

// MetricsReport renders the run's telemetry as one JSON document: the
// seed-deterministic metrics snapshot under "metrics" and the wall-clock
// phase profile under "profile". Only the profile varies between same-seed
// runs.
func (s *Study) MetricsReport() []byte {
	metrics := json.RawMessage("{}")
	if s.Lab != nil {
		metrics = json.RawMessage(s.Lab.Telemetry().Registry.Snapshot())
	}
	profile := json.RawMessage("[]")
	if s.Profiler != nil {
		profile = json.RawMessage(s.Profiler.JSON())
	}
	doc := struct {
		Metrics json.RawMessage `json:"metrics"`
		Profile json.RawMessage `json:"profile"`
	}{metrics, profile}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil { // unreachable: both members are valid JSON
		return []byte("{}")
	}
	return append(b, '\n')
}

// LocalRecords returns the capture filtered to local traffic (App. C.1).
func (s *Study) LocalRecords() []pcap.Record {
	return pcap.FilterLocal(s.Lab.Capture.All)
}

// WritePcaps dumps per-device pcap files into dir, one per MAC, like the
// testbed AP.
func (s *Study) WritePcaps(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, mac := range s.Lab.Capture.MACs() {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.pcap", macFileName(mac))))
		if err != nil {
			return err
		}
		err = pcap.WriteFile(f, s.Lab.Capture.ByMAC[mac])
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func macFileName(mac netx.MAC) string {
	return fmt.Sprintf("%02x%02x%02x%02x%02x%02x", mac[0], mac[1], mac[2], mac[3], mac[4], mac[5])
}

// DeviceByName exposes a lab device.
func (s *Study) DeviceByName(name string) *device.Device { return s.Lab.Device(name) }

// DeviceIPs lists device name → IP for tooling.
func (s *Study) DeviceIPs() map[string]netip.Addr {
	out := make(map[string]netip.Addr, len(s.Lab.Devices))
	for _, d := range s.Lab.Devices {
		out[d.Profile.Name] = d.IP()
	}
	return out
}
